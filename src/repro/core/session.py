"""The Reptile engine and its iterative drill-down session (§2.1, §4.5).

:class:`Reptile` is initialised with a :class:`HierarchicalDataset` (plus
optional feature/model configuration). A :class:`DrillSession` then tracks
the analyst's position — current group-by level and accumulated coordinate
filters — and, per complaint, recommends the next drill-down hierarchy and
the top-K groups to inspect, exactly the loop of the FIST walkthrough:
complain → recommend → drill → repeat.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from ..factorized.forder import HierarchyPaths
from ..factorized.multiquery import (AggregateSet, HierarchyAggregates,
                                     combine_units, hierarchy_unit,
                                     plan_units)
from ..model.features import AuxiliaryFeature, FeaturePlan
from ..relational.cube import Cube, CubeDelta, GroupView
from ..relational.dataset import HierarchicalDataset
from ..relational.delta import Delta, DeltaError, locate_rows
from ..relational.encoding import decode_keys
from ..relational.hierarchy import DrillState
from ..robustness.faultinject import fault_point
from .complaint import Complaint
from .ranker import Recommendation, rank_candidates
from .repair import ModelRepairer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..serving.cache import AggregateCache

#: Session staleness policies: how a session reacts when the engine's
#: data has moved past the version the session last synchronized with.
STALENESS_POLICIES = ("sync", "strict")


class SessionError(ValueError):
    """Raised for invalid session operations."""


class StaleDataError(SessionError):
    """A strict session touched data newer than its pinned version.

    Carries the session's pinned ``data_version`` and the engine's
    ``current`` version so serving front ends can report both (the HTTP
    server maps this to a 409 with the two versions in the body).
    """

    def __init__(self, message: str, pinned: int | None = None,
                 current: int | None = None):
        super().__init__(message)
        self.pinned = pinned
        self.current = current


@dataclass
class ReptileConfig:
    """Engine configuration.

    Parameters
    ----------
    model:
        "multilevel" (default) or "linear".
    n_em_iterations:
        EM iterations for the multi-level model (paper: 20).
    top_k:
        Groups reported per recommendation.
    auto_auxiliary:
        Automatically add features from registered auxiliary datasets when
        the drill-down level contains their join attributes (§3.3.2).
    shards:
        ``> 1`` builds the cube shard-parallel
        (:class:`~repro.relational.shard.ShardedCube`): the relation is
        partitioned by the hierarchy-prefix key and rebuilds/deltas scale
        with shard count. ``0``/``1`` (default) keep the single-block cube.
    workers:
        Worker processes for sharded builds; ``0`` (default) runs the
        sharded pipeline serially in-process. Ignored when ``shards <= 1``.
    spill_dir:
        Out-of-core mode: shard blocks shipped to workers are written to
        this directory and memory-mapped instead of living in shared
        memory, bounding the coordinator's resident footprint to one
        shard's decoded image plus merged stats (the 1e8-row tier).
        ``None`` (default) keeps blocks in shared memory. Ignored when
        ``shards <= 1``.
    """

    model: str = "multilevel"
    n_em_iterations: int = 20
    top_k: int = 5
    auto_auxiliary: bool = True
    shards: int = 0
    workers: int = 0
    spill_dir: str | None = None
    #: Default per-session staleness policy: "sync" fast-forwards a
    #: session automatically when the engine ingested newer data;
    #: "strict" raises :class:`StaleDataError` until an explicit
    #: :meth:`DrillSession.sync`.
    staleness: str = "sync"


class Reptile:
    """The explanation engine: data in, drill-down recommendations out."""

    def __init__(self, dataset: HierarchicalDataset,
                 feature_plan: FeaturePlan | None = None,
                 config: ReptileConfig | None = None,
                 repairer: ModelRepairer | None = None,
                 cache: "AggregateCache | None" = None):
        self.dataset = dataset
        self.config = config or ReptileConfig()
        self.feature_plan = feature_plan or FeaturePlan()
        self.cache = cache
        self.fingerprint: str | None = None
        shards = max(int(self.config.shards or 0), 0)
        workers = max(int(self.config.workers or 0), 0)
        spill_dir = self.config.spill_dir
        if cache is not None:
            from ..serving.cache import dataset_fingerprint
            from ..serving.engine import CachingCube, CachingShardedCube
            # refresh=True: never trust a fingerprint memoized before an
            # in-place mutation — a fresh engine must hash what the data
            # says *now*, or it would silently serve pre-mutation entries.
            self.fingerprint = dataset_fingerprint(dataset, refresh=True)
            if shards > 1:
                self.cube: Cube = CachingShardedCube(
                    dataset, cache, self.fingerprint, n_shards=shards,
                    workers=workers, spill_dir=spill_dir)
            else:
                self.cube = CachingCube(dataset, cache, self.fingerprint)
        elif shards > 1:
            from ..relational.shard import ShardedCube
            self.cube = ShardedCube(dataset, n_shards=shards,
                                    workers=workers, spill_dir=spill_dir)
        else:
            self.cube = Cube(dataset)
        # The general shard-compute tier: unit builds, design fills,
        # cluster-Gram stacks and the eq.-3 sweep all fan out through
        # this executor (sharing the cube's worker-pool registry). Every
        # sharded stage is bitwise-equal to its serial form, so caches
        # and oracles are oblivious to it.
        self.sharder = None
        if shards > 1:
            from ..relational.shard import ShardExecutor, worker_pool
            pool = worker_pool(min(workers, shards)) if workers > 0 else None
            self.sharder = ShardExecutor(shards, pool=pool,
                                         spill_dir=spill_dir)
        self._repairer = repairer
        self._full_paths: dict[str, HierarchyPaths] | None = None
        # Monotonically increasing data version: bumped by every
        # apply_delta() and refresh(). Sessions pin the version they last
        # synchronized with and fast-forward through the delta log.
        self.data_version = 0
        # Per version bump: the set of hierarchy names whose path
        # structure changed (None = everything, a full refresh). Bounded:
        # entries older than _LOG_LIMIT versions are compacted away and
        # sessions pinned before the floor resync in full.
        self._delta_log: list[tuple[int, frozenset[str] | None]] = []
        self._log_floor = 0
        # Instrumentation: hierarchy-unit builds actually executed (after
        # any cache hit) — the expensive §4.4 recomputations.
        self.unit_builds = 0

    def repairer_for(self, group_attrs: Sequence[str]) -> ModelRepairer:
        """The repair function for a drill-down level.

        Starts from the configured plan and appends auxiliary features that
        became applicable at this level. With a serving cache attached the
        repairer is wrapped so per-view predictions are memoized.
        """
        repairer = self._base_repairer(group_attrs)
        if self.cache is not None:
            from ..serving.engine import CachingRepairer
            return CachingRepairer(repairer, self.cache)
        return repairer

    def _base_repairer(self, group_attrs: Sequence[str]) -> ModelRepairer:
        if self._repairer is not None:
            return self._repairer
        plan = self.feature_plan
        if self.config.auto_auxiliary:
            extra = list(plan.extra_specs)
            for aux in self.dataset.applicable_auxiliary(group_attrs):
                for measure in aux.measures:
                    spec = AuxiliaryFeature(aux, measure)
                    if spec not in extra:
                        extra.append(spec)
            plan = replace(plan, extra_specs=extra)
        return ModelRepairer(feature_plan=plan, model=self.config.model,
                             n_iterations=self.config.n_em_iterations,
                             sharder=self.sharder)

    # -- decomposed aggregates (§4.4) ---------------------------------------------------
    def full_paths(self) -> dict[str, HierarchyPaths]:
        """Fully specific root-to-leaf paths of every hierarchy (memoized)."""
        if self._full_paths is None:
            self._full_paths = {
                h.name: HierarchyPaths.from_relation(h, self.dataset.relation)
                for h in self.dataset.dimensions}
        return self._full_paths

    def build_unit(self, paths: HierarchyPaths) -> HierarchyAggregates:
        """One hierarchy's aggregate unit, via the serving cache if present.

        With the shard-compute tier active the unit's stored relations are
        built in workers (distinct-edge sets per level, merged exactly);
        the result is bitwise-equal to the serial build, so the cache key
        is unchanged.
        """
        def compute() -> HierarchyAggregates:
            self.unit_builds += 1
            if self.sharder is not None:
                from ..factorized.multiquery import sharded_hierarchy_unit
                return sharded_hierarchy_unit(paths, sharder=self.sharder)
            return hierarchy_unit(paths)
        if self.cache is None:
            return compute()
        key = ("hunit", self.fingerprint, paths.name, paths.attributes)
        return self.cache.get_or_compute(key, compute)

    def refresh(self) -> None:
        """Re-read the dataset after an arbitrary in-place mutation.

        The full-invalidation path (contrast :meth:`apply_delta`):
        rebuilds the cube's leaf states, recomputes the fingerprint (so
        cached entries for the old contents can no longer be hit), and
        drops memoized hierarchy paths; the data version bumps with an
        everything-changed log entry, so live sessions discard all their
        reusable aggregate units on their next synchronization.
        """
        self._full_paths = None
        self.data_version += 1
        self._log_version(self.data_version, None)
        if self.cache is not None:
            from ..serving.engine import CachingViews
            assert isinstance(self.cube, CachingViews)
            base = self.cube.refresh()
            self.fingerprint = f"{base}@{self.data_version}"
            self.cube.fingerprint = self.fingerprint
        else:
            # In place: sharded cubes keep their partitioning (and worker
            # pool), and everything holding a cube reference stays valid.
            self.cube.rebuild()

    #: Delta-log entries kept; a trickle of ingests must not grow the
    #: engine without bound. Sessions stale by more than this many
    #: versions simply resync everything.
    _LOG_LIMIT = 256

    def touched_since(self, version: int) -> frozenset[str] | None:
        """Hierarchies whose paths changed after ``version`` (None = all)."""
        if version < self._log_floor:
            return None  # history compacted away: resync in full
        names: set[str] = set()
        for v, touched in self._delta_log:
            if v <= version:
                continue
            if touched is None:
                return None
            names |= touched
        return frozenset(names)

    def _log_version(self, version: int,
                     touched: frozenset[str] | None) -> None:
        self._delta_log.append((version, touched))
        if len(self._delta_log) > self._LOG_LIMIT:
            dropped = self._delta_log[:-self._LOG_LIMIT]
            self._delta_log = self._delta_log[-self._LOG_LIMIT:]
            self._log_floor = dropped[-1][0]

    def apply_delta(self, delta: Delta) -> int:
        """Ingest a delta batch incrementally; returns the new version.

        The "maintain continuously" path: instead of a full
        :meth:`refresh`, the delta's rows are threaded through every
        layer — the relation appends/retracts with copy-on-write columns,
        the cube merges a bincount of just the delta batch, hierarchy
        paths extend with the new root-to-leaf paths, and (with a serving
        cache attached) cached views and units are patched or retained
        under the new versioned fingerprint rather than invalidated.
        Sessions pinned to an older version fast-forward via
        :meth:`DrillSession.sync`. Raises
        :class:`~repro.relational.delta.DeltaError` — with nothing
        mutated — when a retraction matches no remaining base row.

        Ingest is atomic: any exception between the first state mutation
        and the commit (the ``ingest.commit`` fault point sits right
        before it) triggers :meth:`_rollback_delta`, so an observer never
        sees the cube or cache patched to a version the engine does not
        report. The relation itself is copy-on-write (``new_rel`` is
        built aside and swapped in at commit), so it needs no rollback.
        """
        relation = self.dataset.relation
        delta.check_against(relation.schema)
        if delta.is_empty():
            return self.data_version
        paths = self.full_paths()  # memoize *pre*-delta paths to patch
        self._validate_delta_paths(delta, paths)
        # Validate retractions at row granularity before touching state.
        removed_idx = locate_rows(relation, delta.retracted) \
            if len(delta.retracted) else None
        version = self.data_version + 1
        old_fp = self.fingerprint
        new_fp: str | None = None
        if self.cache is not None:
            base = (self.fingerprint or "").split("@", 1)[0]
            new_fp = f"{base}@{version}"
        cube_delta: CubeDelta
        try:
            if self.cache is not None:
                cube_delta, touched = self._apply_delta_cached(delta, paths,
                                                               new_fp)
                self.fingerprint = new_fp
            else:
                cube_delta = self.cube.apply_delta(delta)
                touched = self._patch_paths(cube_delta)
            new_rel = relation
            if removed_idx is not None:
                new_rel = new_rel.without_rows(removed_idx)
            if len(delta.appended):
                new_rel = new_rel.with_rows_appended(delta.appended)
            fault_point("ingest.commit", version=version)
        except Exception:
            self._rollback_delta(old_fp, new_fp)
            raise
        self.dataset.relation = new_rel
        self.data_version = version
        self._log_version(version, frozenset(touched))
        return version

    def _rollback_delta(self, old_fp: str | None,
                        new_fp: str | None) -> None:
        """Undo a partially applied delta; the engine re-reads committed
        state.

        The relation was never swapped, so rebuilding the cube from it
        restores the pre-delta leaf arrays bitwise (the build kernels are
        deterministic). Cache entries the failed delta already re-keyed
        under ``new_fp`` are dropped; entries popped from ``old_fp``
        during patching are simply lost — a cold cache, not a wrong one.
        Memoized hierarchy paths recompute lazily from the relation.
        """
        self._full_paths = None
        self.cube.rebuild()
        if self.cache is not None:
            self.cube.fingerprint = old_fp
            self.fingerprint = old_fp
            if new_fp is not None:
                self.cache.invalidate(new_fp)

    def _apply_delta_cached(self, delta: Delta,
                            paths: dict[str, HierarchyPaths],
                            new_fp: str) -> tuple[CubeDelta, set[str]]:
        """Cube delta + cache patching under the new versioned fingerprint."""
        from ..serving.engine import patch_cache_for_delta
        old_fp = self.cube.fingerprint
        cube_delta = self.cube.apply_delta(delta)
        self.cube.fingerprint = new_fp
        old_paths = dict(paths)
        touched = self._patch_paths(cube_delta)
        patch_cache_for_delta(
            self.cache, old_fp, new_fp, cube_delta,
            self.cube.leaf_attrs, touched, old_paths, self._full_paths)
        return cube_delta, touched

    def _validate_delta_paths(self, delta: Delta,
                              paths: dict[str, HierarchyPaths]) -> None:
        """Reject appends violating the leaf → ancestors FD, pre-mutation."""
        if not len(delta.appended):
            return
        for h in self.dataset.dimensions:
            leaf_to_path = {p[-1]: p for p in paths[h.name].paths}
            cols = [delta.appended.column_values(a) for a in h.attributes]
            for path in zip(*cols):
                known = leaf_to_path.setdefault(path[-1], path)
                if known != path:
                    raise DeltaError(
                        f"appended rows violate hierarchy {h.name!r}: leaf "
                        f"{path[-1]!r} maps to both {known!r} and {path!r}")

    def _patch_paths(self, cube_delta: CubeDelta) -> set[str]:
        """Patch memoized hierarchy paths from a cube delta.

        Hierarchies the delta did not touch keep their
        :class:`HierarchyPaths` object (and with it every identity-keyed
        memo downstream); touched hierarchies extend with the new
        root-to-leaf paths, or — when a retraction emptied leaf groups —
        recompute from the cube's surviving leaf keys, which is
        O(leaf groups), never O(rows). Returns the touched names.
        """
        assert self._full_paths is not None
        leaf_attrs = self.cube.leaf_attrs
        touched: set[str] = set()
        for h in self.dataset.dimensions:
            positions = [leaf_attrs.index(a) for a in h.attributes]
            old = self._full_paths[h.name]
            known = set(old.paths)
            encs = [cube_delta.encodings[p] for p in positions]
            new_paths: set[tuple] = set()
            if len(cube_delta.added):
                decoded = decode_keys(
                    np.unique(cube_delta.added[:, positions], axis=0), encs)
                new_paths = {p for p in decoded if p not in known}
            lost_paths: set[tuple] = set()
            if len(cube_delta.removed):
                # A dropped leaf group may have been a path's last
                # witness: one sorted-membership pass over the surviving
                # leaf keys finds the paths that actually vanished.
                vanished = self.cube.vanished_keys(
                    positions,
                    np.unique(cube_delta.removed[:, positions], axis=0))
                lost_paths = {p for p in decode_keys(vanished, encs)
                              if p in known}
            if lost_paths:
                self._full_paths[h.name] = HierarchyPaths(
                    h.name, h.attributes, (known - lost_paths) | new_paths)
                touched.add(h.name)
            elif new_paths:
                self._full_paths[h.name] = old.extend(new_paths)
                touched.add(h.name)
        return touched

    def session(self, group_by: Sequence[str] = (),
                filters: Mapping | None = None,
                staleness: str | None = None) -> "DrillSession":
        """Start an exploration session at the given group-by level.

        Filtering a hierarchy attribute implies that level is already
        drilled (Example 7: the view "District=Ofla, Year" sits at the
        district level of geography, so the next geo drill is village).
        The effective group-by is the union of hierarchy prefixes implied
        by ``group_by`` and ``filters``. ``staleness`` overrides the
        engine's default policy for this session (see
        :data:`STALENESS_POLICIES`).
        """
        filters = dict(filters or {})
        depths: dict[str, int] = {h.name: 0 for h in self.dataset.dimensions}
        for attr in list(group_by) + list(filters):
            h = self.dataset.dimensions.hierarchy_of(attr)
            depths[h.name] = max(depths[h.name], h.level(attr) + 1)
        effective: list[str] = []
        for h in self.dataset.dimensions:
            effective.extend(h.prefix(depths[h.name]))
        state = DrillState.from_groupby(self.dataset.dimensions, effective)
        return DrillSession(self, state, filters, staleness=staleness)

    def recommend(self, complaint: Complaint,
                  group_by: Sequence[str] = (),
                  filters: Mapping | None = None,
                  k: int | None = None) -> Recommendation:
        """One-shot recommendation without an explicit session."""
        return self.session(group_by, filters).recommend(complaint, k=k)


class DrillSession:
    """Tracks the analyst's position in the drill-down workflow.

    Every session pins the engine ``data_version`` it last synchronized
    with. When the engine ingests deltas (or refreshes wholesale), the
    session's staleness policy decides what happens on its next query:
    ``"sync"`` (default) fast-forwards automatically via :meth:`sync`,
    re-merging only what the pending deltas touched; ``"strict"`` raises
    :class:`StaleDataError` until :meth:`sync` is called explicitly —
    for callers that must never mix results across data versions inside
    one analysis step.
    """

    def __init__(self, engine: Reptile, state: DrillState, filters: dict,
                 staleness: str | None = None):
        self.engine = engine
        self.state = state
        self.filters = filters
        self.history: list[Recommendation] = []
        # A session is single-writer: its drill state, filters, history
        # and reusable units all mutate per request. Concurrent serving
        # front ends serialize requests for one session id on this lock
        # (the session itself never acquires it — no nesting).
        self.lock = threading.RLock()
        policy = staleness or engine.config.staleness
        if policy not in STALENESS_POLICIES:
            raise SessionError(
                f"staleness must be one of {STALENESS_POLICIES}, "
                f"got {policy!r}")
        self.staleness = policy
        # Incrementally maintained per-hierarchy aggregate units (§4.4):
        # hierarchy name -> HierarchyAggregates at the current drill depth.
        self._units: dict[str, HierarchyAggregates] = {}
        # Hierarchy order of the factorised matrix; each committed drill
        # moves the drilled hierarchy to the end (§3.4).
        self._unit_order: list[str] = [h.name
                                       for h in engine.dataset.dimensions]
        # The engine data version this session last synchronized with.
        self.data_version = engine.data_version
        # Units this session could not reuse from its previous state.
        self.unit_computations = 0

    # -- staleness --------------------------------------------------------------------
    def is_stale(self) -> bool:
        """Whether the engine ingested data this session has not seen."""
        return self.data_version != self.engine.data_version

    def sync(self) -> "DrillSession":
        """Fast-forward to the engine's current data version.

        Re-merges only the deltas applied since the pinned version: a
        hierarchy untouched by every pending delta keeps its reusable
        §4.4 aggregate unit; touched (or wholesale-refreshed) hierarchies
        drop theirs and are rebuilt — normally straight from the patched
        serving cache — on the next :meth:`aggregates`.
        """
        if not self.is_stale():
            return self
        touched = self.engine.touched_since(self.data_version)
        if touched is None:
            self._units = {}
        else:
            for name in touched:
                self._units.pop(name, None)
        self.data_version = self.engine.data_version
        return self

    def _ensure_fresh(self) -> None:
        if not self.is_stale():
            return
        if self.staleness == "strict":
            raise StaleDataError(
                f"session pinned at data version {self.data_version} but "
                f"the engine is at {self.engine.data_version}; call "
                f"sync() to fast-forward",
                pinned=self.data_version,
                current=self.engine.data_version)
        self.sync()

    # -- views ------------------------------------------------------------------------
    @property
    def group_by(self) -> tuple[str, ...]:
        return self.state.group_by()

    def view(self) -> GroupView:
        """The current aggregate view the analyst is looking at."""
        self._ensure_fresh()
        return self.engine.cube.view(self.group_by, filters=self.filters)

    def aggregates(self) -> AggregateSet:
        """Decomposed aggregates {TOTAL, COUNT, COF} of the current state.

        Maintained incrementally per §4.4: after a :meth:`drill`, only the
        drilled hierarchy's :class:`HierarchyAggregates` unit is
        recomputed; every other hierarchy's unit is reused and merely
        rescaled inside :func:`~repro.factorized.multiquery.combine_units`.
        ``unit_computations`` counts the non-reused units for tests and
        instrumentation. The same §4.4 rules power the Figure 9 benchmark's
        :class:`~repro.factorized.drilldown.DrilldownEngine` (which adds
        tentative candidate evaluation and per-mode accounting) — a change
        to the reuse or ordering rule must land in both.
        """
        def counting_builder(paths: HierarchyPaths) -> HierarchyAggregates:
            self.unit_computations += 1
            return self.engine.build_unit(paths)
        self._ensure_fresh()
        units = plan_units(self.engine.full_paths(), self.state.depths,
                           self._unit_order, self._units,
                           builder=counting_builder)
        self._units = units
        return combine_units([units[n] for n in self._unit_order
                              if n in units])

    def reset_aggregates(self) -> None:
        """Forget reusable units (call after the dataset was mutated)."""
        self._units = {}
        self.data_version = self.engine.data_version

    # -- the complaint loop -------------------------------------------------------------
    def provenance(self, complaint: Complaint) -> dict:
        """Coordinate filter identifying the complaint tuple's provenance."""
        coords = dict(self.filters)
        for attr, value in complaint.coordinates.items():
            if attr not in self.group_by and attr not in self.filters:
                raise SessionError(
                    f"complaint coordinate {attr!r} is not a grouped or "
                    f"filtered attribute of this session")
            coords[attr] = value
        return coords

    def recommend(self, complaint: Complaint,
                  k: int | None = None) -> Recommendation:
        """Recommend the next drill-down hierarchy and its top groups."""
        self._ensure_fresh()
        candidates = [(h.name, attr) for h, attr in self.state.candidates()]
        if not candidates:
            raise SessionError("every hierarchy is fully drilled down")
        repairer = self.engine.repairer_for(
            self.group_by + tuple(a for _, a in candidates))
        top_k = k or self.engine.config.top_k
        # k is threaded into the ranker so the array sweep materializes
        # ScoredGroup records only for the groups the analyst will see.
        recommendation = rank_candidates(
            self.engine.cube, self.group_by, candidates, complaint,
            self.provenance(complaint), repairer, k=top_k,
            sharder=self.engine.sharder)
        for rec in recommendation.per_hierarchy.values():
            rec.groups = rec.top(top_k)
        self.history.append(recommendation)
        return recommendation

    def drill(self, hierarchy: str,
              coordinates: Mapping | None = None) -> "DrillSession":
        """Commit a drill-down, optionally zooming into chosen coordinates.

        ``coordinates`` (e.g. the complaint tuple's key, or a recommended
        group's coordinates) become part of the session filter, mirroring
        the provenance replacement of Example 7.
        """
        self._ensure_fresh()
        self.state = self.state.drill(hierarchy)
        if coordinates:
            for attr, value in coordinates.items():
                self.filters[attr] = value
        # §4.4 maintenance: only the drilled hierarchy's unit is stale;
        # it also moves to the end of the matrix's hierarchy order (§3.4).
        self._units.pop(hierarchy, None)
        if hierarchy in self._unit_order:
            self._unit_order.remove(hierarchy)
            self._unit_order.append(hierarchy)
        return self

    def __repr__(self) -> str:
        return (f"DrillSession(group_by={list(self.group_by)}, "
                f"filters={self.filters})")
