"""Reptile's core: complaints, model-based repair, ranking, sessions."""

from .complaint import Complaint, Direction
from .explanation import (FeatureContribution, describe_complaint,
                          describe_group, explain_prediction,
                          render_prediction_explanation,
                          render_recommendation, resolution_fraction)
from .ranker import (DrilldownRecommendation, Recommendation, ScoredGroup,
                     rank_candidate, rank_candidates, score_drilldown)
from .repair import (CustomRepairer, ModelRepairer, NON_NEGATIVE,
                     REPAIR_STATISTICS, RepairAlignmentError,
                     RepairPrediction)
from .session import (STALENESS_POLICIES, DrillSession, Reptile,
                      ReptileConfig, SessionError, StaleDataError)
from .set_repair import (RepairSet, exhaustive_set_repair,
                         greedy_set_repair)

__all__ = [
    "Complaint", "Direction", "DrilldownRecommendation", "Recommendation",
    "ScoredGroup", "rank_candidate", "rank_candidates", "score_drilldown",
    "CustomRepairer", "ModelRepairer", "NON_NEGATIVE", "REPAIR_STATISTICS",
    "RepairAlignmentError", "RepairPrediction", "DrillSession", "Reptile",
    "ReptileConfig", "STALENESS_POLICIES", "StaleDataError",
    "SessionError", "FeatureContribution", "describe_complaint",
    "describe_group", "explain_prediction", "render_prediction_explanation",
    "render_recommendation", "resolution_fraction", "RepairSet",
    "exhaustive_set_repair", "greedy_set_repair",
]
