"""Human-readable explanations of recommendations (the Interface of Fig. 2).

The FIST study's top qualitative request was "understand why the model
makes certain predictions" (P1, §5.4). This module renders a
:class:`Recommendation` the way the paper's interface presents it
(Appendix M, Figure 17) — ranked groups with observed vs expected
statistics and how far each repair moves the complaint — and provides a
per-feature contribution breakdown of a model prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..model.features import ViewDesign
from ..model.multilevel import MultilevelFit
from .complaint import Complaint, Direction
from .ranker import Recommendation, ScoredGroup


def describe_complaint(complaint: Complaint) -> str:
    where = ", ".join(f"{k}={v}" for k, v in complaint.coordinates.items()) \
        or "the overall result"
    if complaint.direction is Direction.TARGET:
        return (f"{complaint.aggregate.upper()} at {where} should be "
                f"{complaint.target:g}")
    return (f"{complaint.aggregate.upper()} at {where} is too "
            f"{complaint.direction.value}")


def describe_group(group: ScoredGroup, base_penalty: float) -> str:
    """One ranked group as a sentence with its repair effect."""
    coords = ", ".join(f"{k}={v}" for k, v in group.coordinates.items())
    stats = ", ".join(
        f"{name}={group.observed[name]:.3g} (expected {expected:.3g})"
        for name, expected in group.expected.items()
        if name in group.observed)
    resolved = resolution_fraction(group, base_penalty)
    return (f"{coords}: {stats}; repairing it resolves "
            f"{100 * resolved:.0f}% of the complaint")


def resolution_fraction(group: ScoredGroup, base_penalty: float) -> float:
    """Fraction of the complaint's penalty the repair removes (clamped)."""
    if not np.isfinite(base_penalty) or abs(base_penalty) < 1e-12:
        return 0.0
    return float(np.clip(group.margin_gain / abs(base_penalty), 0.0, 1.0))


def render_recommendation(recommendation: Recommendation,
                          k: int = 5) -> str:
    """Multi-line report: best hierarchy first, then every candidate."""
    lines = [f"Complaint: {describe_complaint(recommendation.complaint)}"]
    best = recommendation.best_hierarchy
    ordered = sorted(recommendation.per_hierarchy.values(),
                     key=lambda r: r.hierarchy != best)
    for rec in ordered:
        marker = " (recommended)" if rec.hierarchy == best else ""
        lines.append(f"\nDrill down {rec.hierarchy!r} to "
                     f"attribute {rec.attribute!r}{marker}:")
        if not rec.groups:
            lines.append("  no groups in the complaint's provenance")
            continue
        for rank, group in enumerate(rec.top(k), start=1):
            lines.append(f"  {rank}. "
                         + describe_group(group, rec.base_penalty))
    return "\n".join(lines)


@dataclass
class FeatureContribution:
    """One feature's additive contribution to a prediction."""

    name: str
    value: float         # standardized feature value for the group
    coefficient: float   # fixed-effect coefficient β
    contribution: float  # value × (β + cluster effect, if in Z)


def explain_prediction(view_design: ViewDesign, fit: MultilevelFit,
                       key: tuple) -> list[FeatureContribution]:
    """Per-feature breakdown of ŷ(key) = Σ x_f·(β_f + b_{cluster,f}).

    Answers the FIST users' "why does the model expect this value?" —
    the returned contributions sum to the model's prediction for the
    group (fixed effects plus its cluster's random effects).
    """
    row_index = view_design.row_of[tuple(key)]
    x_row = view_design.design.x[row_index]
    # Locate the group's cluster from the design offsets.
    offsets = view_design.design.offsets
    cluster = int(np.searchsorted(offsets, row_index, side="right") - 1)
    z_cols = view_design.design.z_columns
    names = view_design.feature_set.column_names
    out = []
    for f, name in enumerate(names):
        beta = float(fit.beta[f])
        effect = beta
        if f in z_cols:
            effect += float(fit.b[cluster][z_cols.index(f)])
        out.append(FeatureContribution(
            name=name, value=float(x_row[f]), coefficient=beta,
            contribution=float(x_row[f]) * effect))
    return out


def render_prediction_explanation(view_design: ViewDesign,
                                  fit: MultilevelFit, key: tuple) -> str:
    """The contribution table as text, largest |contribution| first."""
    contributions = explain_prediction(view_design, fit, key)
    total = sum(c.contribution for c in contributions)
    lines = [f"prediction for {key}: {total:.4g}"]
    for c in sorted(contributions, key=lambda c: -abs(c.contribution)):
        lines.append(f"  {c.name:<24s} value={c.value:+8.3f} "
                     f"beta={c.coefficient:+8.3f} -> {c.contribution:+9.4f}")
    return "\n".join(lines)
