"""Frozen dict-based reference of the recommend path (pre-array semantics).

This module freezes the group-at-a-time implementation of the §3.2/§4.5
recommendation pipeline exactly as it ran before the array-native refactor:
per-group Python loops over ``{key: AggState}`` mappings for feature
building, design construction, repair prediction, and drill-down scoring.
It mirrors :mod:`repro.relational.rowref` one layer up, and exists for the
same two reasons:

* **ground truth** — the property tests
  (``tests/test_ranker_array_properties.py``) assert that the array ranker
  produces *exactly* the results these loops produce — same keys, same
  scores (bitwise), same ordering;
* **benchmarking** — ``benchmarks/bench_fig19_recommend.py`` measures the
  array path's speedup against these loops on identical cubes.

Nothing in the engine itself calls into this module; do not "optimize" it.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..model.backends import DenseDesign
from ..model.features import (BuiltFeature, FeatureError, FeaturePlan,
                              FeatureSet, LagFeature, MainEffectFeature)
from ..model.linear import LinearModel
from ..model.multilevel import MultilevelModel
from ..relational.aggregates import AggState, merge_states
from ..relational.cube import Cube, GroupView
from .complaint import Complaint
from .ranker import DrilldownRecommendation, Recommendation, ScoredGroup
from .repair import NON_NEGATIVE, ModelRepairer, RepairPrediction


# -- feature building (the pre-vectorization per-group loops) ------------------

def _orderable(key: tuple) -> tuple:
    return tuple((type(v).__name__, v) for v in key)


def _build_main_effect(spec: MainEffectFeature, view: GroupView,
                       target: str) -> BuiltFeature:
    import statistics
    pos = view.group_attrs.index(spec.attribute)
    per_value: dict = {}
    for key, state in view.groups.items():
        per_value.setdefault(key[pos], []).append(state.statistic(target))
    overall = statistics.median(
        [s.statistic(target) for s in view.groups.values()]) \
        if view.groups else 0.0
    mapping = {v: statistics.median(vals) if len(vals) >= spec.min_groups
               else overall
               for v, vals in per_value.items()}
    return BuiltFeature(f"main:{spec.attribute}", (spec.attribute,),
                        mapping, default=overall)


def _build_lag(spec: LagFeature, view: GroupView, target: str) -> BuiltFeature:
    import statistics
    pos = view.group_attrs.index(spec.attribute)
    per_value: dict = {}
    for key, state in view.groups.items():
        per_value.setdefault(key[pos], []).append(state.statistic(target))
    medians = {v: statistics.median(vals) for v, vals in per_value.items()}
    overall = statistics.median(
        [s.statistic(target) for s in view.groups.values()]) \
        if view.groups else 0.0
    mapping = {}
    for v in medians:
        try:
            lagged = v - spec.lag
        except TypeError:
            raise FeatureError(
                f"lag feature needs numeric attribute, got {v!r}") from None
        mapping[v] = medians.get(lagged, overall)
    return BuiltFeature(f"lag{spec.lag}:{spec.attribute}",
                        (spec.attribute,), mapping, default=overall)


def _build_spec(spec, view: GroupView, target: str) -> BuiltFeature:
    if type(spec) is MainEffectFeature:
        return _build_main_effect(spec, view, target)
    if type(spec) is LagFeature:
        return _build_lag(spec, view, target)
    return spec.build(view, target)


def _standardized(built: BuiltFeature, keys: list) -> BuiltFeature:
    values = np.asarray([built.mapping.get(k, built.default) for k in keys],
                        dtype=float)
    mean = float(values.mean()) if len(values) else 0.0
    std = float(values.std()) if len(values) else 1.0
    if std < 1e-12:
        std = 1.0
    mapping = {k: (v - mean) / std for k, v in built.mapping.items()}
    return BuiltFeature(built.name, built.attributes, mapping,
                        default=(built.default - mean) / std)


def build_features_ref(view: GroupView, target: str,
                       plan: FeaturePlan) -> FeatureSet:
    """The pre-array ``FeaturePlan.build``: per-group loops throughout."""
    features: list[BuiltFeature] = []
    keys = list(view.groups)
    for spec in plan.realised_specs(view):
        if not spec.applicable(view):
            continue
        built = _build_spec(spec, view, target)
        if plan.standardize:
            feature_keys = [built.key_of(view.group_attrs, k) for k in keys]
            built = _standardized(built, feature_keys)
        features.append(built)
    if not features and not plan.intercept:
        raise FeatureError("no applicable features and no intercept")
    return FeatureSet(tuple(view.group_attrs), features,
                      intercept=plan.intercept,
                      random_effects=plan.random_effects)


# -- design building (per-row value_for loops) ---------------------------------

def build_view_design_ref(view: GroupView, target: str, plan: FeaturePlan,
                          cluster_attrs: Sequence[str]):
    """The pre-array ``build_view_design``: Python sort + per-row rows."""
    cluster_attrs = tuple(cluster_attrs)
    for a in cluster_attrs:
        if a not in view.group_attrs:
            raise FeatureError(f"cluster attribute {a!r} not in view")
    positions = [view.group_attrs.index(a) for a in cluster_attrs]

    def cluster_key(key: tuple) -> tuple:
        return tuple(key[p] for p in positions)

    keys = sorted(view.groups,
                  key=lambda k: (_orderable(cluster_key(k)), _orderable(k)))
    if not keys:
        raise FeatureError("cannot build a design over an empty view")
    sizes: list[int] = []
    prev = object()
    for k in keys:
        ck = cluster_key(k)
        if ck != prev:
            sizes.append(0)
            prev = ck
        sizes[-1] += 1

    feature_set = build_features_ref(view, target, plan)
    n = len(keys)
    x = np.empty((n, feature_set.n_columns))
    col = 0
    if feature_set.intercept:
        x[:, 0] = 1.0
        col = 1
    for f in feature_set.features:
        x[:, col] = [f.value_for(view.group_attrs, k) for k in keys]
        col += 1
    y = np.asarray([view.groups[k].statistic(target) for k in keys])
    design = DenseDesign(x, sizes, z_columns=feature_set.z_indices())
    return keys, y, design


# -- repair prediction (dict building) -----------------------------------------

def predict_ref(repairer: ModelRepairer, parallel: GroupView,
                cluster_attrs: Sequence[str],
                aggregate: str) -> RepairPrediction:
    """The pre-array ``ModelRepairer.predict``: one model per statistic,
    results gathered into nested per-key dicts."""
    stats = repairer.statistics_for(aggregate)
    per_stat: dict[str, dict[tuple, float]] = {}
    for stat in stats:
        keys, y, design = build_view_design_ref(
            parallel, stat, repairer.feature_plan, cluster_attrs)
        if repairer.model == "linear":
            fitted = LinearModel().fit_predict(design, y)
        elif repairer.model == "multilevel":
            fitted = MultilevelModel(
                n_iterations=repairer.n_iterations).fit_predict(design, y)
        else:
            raise ValueError(f"unknown model kind {repairer.model!r}")
        if stat in NON_NEGATIVE:
            fitted = np.maximum(fitted, 0.0)
        per_stat[stat] = {key: float(fitted[i]) for i, key in enumerate(keys)}
    predicted: dict[tuple, dict[str, float]] = {}
    for key in parallel.groups:
        predicted[key] = {s: per_stat[s][key] for s in stats}
    return RepairPrediction(stats, predicted)


# -- scoring (the group-at-a-time loop of eq. 3) -------------------------------

def score_drilldown_ref(drill_view: GroupView,
                        prediction: RepairPrediction,
                        complaint: Complaint,
                        observed_stats: Sequence[str] = ("count", "mean",
                                                         "std"),
                        ) -> tuple[float, list[ScoredGroup]]:
    """The pre-array ``score_drilldown``: one Python iteration per group."""
    from ..relational.aggregates import evaluate_composite
    parent = merge_states(drill_view.groups.values())
    base_penalty = complaint.penalty_of_state(parent)
    scored: list[ScoredGroup] = []
    for key, state in drill_view.groups.items():
        repaired = prediction.repair_state(key, state)
        new_parent = parent.replace(state, repaired)
        score = complaint.penalty_of_state(new_parent)
        scored.append(ScoredGroup(
            key=key,
            coordinates=drill_view.coordinates(key),
            score=score,
            margin_gain=base_penalty - score,
            observed={s: state.statistic(s) for s in observed_stats},
            expected=dict(prediction.expected(key)),
            repaired_value=evaluate_composite(complaint.aggregate,
                                              new_parent)))

    def repair_size(group: ScoredGroup) -> float:
        total = 0.0
        for stat, expected in group.expected.items():
            observed = group.observed.get(stat, 0.0)
            total += abs(expected - observed)
        return total

    scored.sort(key=lambda g: (g.score, -abs(repair_size(g))))
    return base_penalty, scored


def rank_candidate_ref(cube: Cube, group_attrs: Sequence[str],
                       next_attr: str, hierarchy: str, complaint: Complaint,
                       provenance: Mapping, repairer: ModelRepairer,
                       ) -> DrilldownRecommendation:
    """One candidate hierarchy through the frozen dict pipeline."""
    drill_view = cube.drilldown_view(group_attrs, next_attr, provenance)
    if not drill_view.groups:
        return DrilldownRecommendation(hierarchy, next_attr,
                                       base_penalty=float("inf"))
    parallel = cube.parallel_view(group_attrs, next_attr)
    prediction = predict_ref(repairer, parallel, group_attrs,
                             complaint.aggregate)
    base_penalty, scored = score_drilldown_ref(drill_view, prediction,
                                               complaint)
    return DrilldownRecommendation(hierarchy, next_attr, base_penalty, scored)


def rank_candidates_ref(cube: Cube, group_attrs: Sequence[str],
                        candidates: Sequence[tuple[str, str]],
                        complaint: Complaint, provenance: Mapping,
                        repairer: ModelRepairer) -> Recommendation:
    """One full invocation through the frozen dict pipeline."""
    per_hierarchy = {}
    for hierarchy, next_attr in candidates:
        per_hierarchy[hierarchy] = rank_candidate_ref(
            cube, group_attrs, next_attr, hierarchy, complaint, provenance,
            repairer)
    if not per_hierarchy:
        raise ValueError("no candidate hierarchies left to drill")
    return Recommendation(complaint, per_hierarchy)
