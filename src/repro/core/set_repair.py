"""Multi-group repairs — the future-work extension of Appendix M.

The paper's ranker repairs exactly one group (eq. 3). Appendix M shows a
real failure this causes: with two of a region's three districts corrupted
identically, repairing either one alone leaves the standard deviation
unchanged (the parabola argument), so no single-group repair resolves an
"std too high" complaint. The appendix proposes searching over *sets* of
tuples and notes the general problem is NP-hard (2ⁿ subsets, no
submodularity for std).

This module implements the two practical strategies the appendix hints at:

* :func:`greedy_set_repair` — repeatedly add the group whose repair most
  reduces the complaint given everything already repaired (linear in
  |V′|·k; no optimality guarantee, mirrors Joglekar et al.'s greedy);
* :func:`exhaustive_set_repair` — exact search over subsets up to a small
  ``max_size`` (the two-district case needs size 2).

Both return a :class:`RepairSet` whose groups jointly minimise
``f_comp(G(V′ ∖ S ∪ f_repair(S)))``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..relational.aggregates import AggState, merge_states
from ..relational.cube import GroupView
from .complaint import Complaint
from .repair import RepairPrediction


@dataclass
class RepairSet:
    """A set of jointly repaired groups and its complaint outcome."""

    keys: list[tuple] = field(default_factory=list)
    base_penalty: float = 0.0
    penalty: float = 0.0

    @property
    def margin_gain(self) -> float:
        return self.base_penalty - self.penalty

    def __len__(self) -> int:
        return len(self.keys)


def _penalty_after(parent: AggState, drill_view: GroupView,
                   prediction: RepairPrediction, keys, complaint: Complaint
                   ) -> float:
    repaired = parent
    for key in keys:
        state = drill_view.groups[key]
        repaired = repaired.replace(state, prediction.repair_state(key, state))
    return complaint.penalty_of_state(repaired)


def greedy_set_repair(drill_view: GroupView, prediction: RepairPrediction,
                      complaint: Complaint, max_groups: int = 3,
                      min_gain: float = 1e-9) -> RepairSet:
    """Greedily grow the repair set while the complaint keeps improving.

    Each step repairs the group with the lowest resulting penalty given
    the groups already repaired; stops at ``max_groups`` or when the best
    marginal improvement falls below ``min_gain``.
    """
    parent = merge_states(drill_view.groups.values())
    base = complaint.penalty_of_state(parent)
    chosen: list[tuple] = []
    current = base
    remaining = set(drill_view.groups)
    while remaining and len(chosen) < max_groups:
        best_key, best_penalty = None, current
        for key in remaining:
            penalty = _penalty_after(parent, drill_view, prediction,
                                     chosen + [key], complaint)
            if penalty < best_penalty - min_gain:
                best_key, best_penalty = key, penalty
        if best_key is None:
            break
        chosen.append(best_key)
        remaining.discard(best_key)
        current = best_penalty
    return RepairSet(chosen, base, current)


def exhaustive_set_repair(drill_view: GroupView,
                          prediction: RepairPrediction,
                          complaint: Complaint,
                          max_size: int = 2) -> RepairSet:
    """Exact search over all repair sets of size ≤ ``max_size``.

    Exponential in ``max_size`` (|V′| choose k evaluations) — intended for
    the small drill-down fan-outs where the Appendix M failure occurs.
    """
    parent = merge_states(drill_view.groups.values())
    base = complaint.penalty_of_state(parent)
    best = RepairSet([], base, base)
    keys = list(drill_view.groups)
    for size in range(1, max_size + 1):
        for subset in itertools.combinations(keys, size):
            penalty = _penalty_after(parent, drill_view, prediction,
                                     list(subset), complaint)
            if penalty < best.penalty:
                best = RepairSet(list(subset), base, penalty)
    return best
