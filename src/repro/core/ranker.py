"""Ranking drill-down groups by complaint resolution (Problem 1).

For a candidate hierarchy H with next attribute A, the ranker:

1. computes the drill-down view ``V' = drilldown(V, t_c, H)`` (the
   complaint tuple's provenance grouped one level deeper),
2. obtains expected statistics for every group from the repair function
   (fitted over all *parallel groups*, §3.2),
3. for each group ``t ∈ V'`` forms ``t'_c = G(V' ∖ {t} ∪ {f_repair(t)})``
   (eq. 3) and scores it by ``f_comp(t'_c)``,
4. returns groups ranked ascending by score (ties broken toward larger
   repairs), along with the *margin gain* — how much the penalty improved
   versus not repairing anything (the quantity mapped in Figure 18).

:func:`rank_candidates` runs this for every hierarchy that can still be
drilled and picks ``(H*, t*)`` of eq. 1.

The scoring sweep is array-native: the drill-down view's
:class:`~repro.relational.aggregates.GroupStats` arrays and the repair
prediction's matrix are combined through the fused-kernel tier
(``kernels.rank1_sweep`` — the "replace one group" parent update of
eq. 3 is a rank-1 adjustment on the ``(count, sum, sumsq)`` arrays,
identical bitwise on every backend) — then one ``np.lexsort`` ranks
every candidate and :class:`ScoredGroup` records are materialized only
for the returned top-k. Results are exactly equal (same keys, same scores, same
ordering) to the frozen group-at-a-time reference in
:mod:`repro.core.rankref`, which the property tests enforce.
"""

from __future__ import annotations

import heapq
import os
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from .. import kernels
from ..relational.aggregates import AggState, GroupStats, merge_states
from ..relational.cube import Cube, GroupView, StatesMap
from ..relational.shard import shared_arrays
from .complaint import Complaint
from .repair import ModelRepairer, RepairPrediction

#: Instrumentation: how many scoring sweeps ran vectorized vs through the
#: group-at-a-time fallback (non-replayable hand-built predictions). The
#: serving layer surfaces these in its stats endpoint.
RANKER_STATS = {"array": 0, "fallback": 0}


@dataclass(frozen=True)
class ScoredGroup:
    """One drill-down group with its repair outcome."""

    key: tuple
    coordinates: dict
    score: float              # f_comp after repairing this group
    margin_gain: float        # base penalty − score (bigger = better)
    observed: dict            # observed base statistics
    expected: dict            # model-expected statistics
    repaired_value: float     # parent aggregate after the repair


@dataclass
class DrilldownRecommendation:
    """Ranked groups for one candidate hierarchy."""

    hierarchy: str
    attribute: str
    base_penalty: float       # f_comp with no repair
    groups: list[ScoredGroup] = field(default_factory=list)

    @property
    def best(self) -> ScoredGroup | None:
        return self.groups[0] if self.groups else None

    def top(self, k: int) -> list[ScoredGroup]:
        return self.groups[:k]


@dataclass
class Recommendation:
    """Result of one Reptile invocation across all candidate hierarchies."""

    complaint: Complaint
    per_hierarchy: dict[str, DrilldownRecommendation]

    @property
    def best_hierarchy(self) -> str:
        """H* of eq. 1: the hierarchy whose best repair scores lowest.

        Equal-scoring hierarchies tie-break on name so the winner does not
        depend on candidate insertion order.
        """
        def rank(h: str) -> tuple[float, str]:
            best = self.per_hierarchy[h].best
            return (best.score if best else float("inf"), h)

        return min(self.per_hierarchy, key=rank)

    @property
    def best_group(self) -> ScoredGroup:
        """t* of eq. 1."""
        return self.per_hierarchy[self.best_hierarchy].best

    def ranked(self, hierarchy: str | None = None) -> list[ScoredGroup]:
        h = hierarchy or self.best_hierarchy
        return self.per_hierarchy[h].groups


def _view_stats(drill_view: GroupView) -> tuple[list, GroupStats]:
    """The view's groups as ``(keys, struct-of-arrays)``.

    Cube-built views expose the arrays directly; hand-built dict views are
    lifted into arrays once (cheaper than looping per group per statistic
    further down).
    """
    groups = drill_view.groups
    if isinstance(groups, StatesMap):
        return groups.key_list, groups.stats
    keys = list(groups)
    count = np.asarray([groups[k].count for k in keys], dtype=float)
    total = np.asarray([groups[k].total for k in keys], dtype=float)
    sumsq = np.asarray([groups[k].sumsq for k in keys], dtype=float)
    return keys, GroupStats(count, total, sumsq)


def _sweep_task(source, lo: int, hi: int, n_stats: int,
                parent: tuple[float, float, float],
                statistics: tuple[str, ...], aggregate: str,
                observed_stats: tuple[str, ...], complaint: Complaint,
                k: int | None):
    """Worker kernel: eq.-3 sweep + local top-k over one group range.

    ``rank1_sweep`` is elementwise per group once the parent scalars are
    fixed (its ``ok.any()``/``ok.all()`` branches only elide identity
    work), so running it on a contiguous slice yields exactly the rows
    the full-array sweep computes. The local ``np.lexsort`` order is the
    global order restricted to the range (stable ties ascend by index),
    so per-range top-k heaps merge exactly on the coordinator.
    """
    t0 = time.perf_counter()
    arrays, release = shared_arrays(source)
    try:
        count = arrays["count"][lo:hi]
        total = arrays["total"][lo:hi]
        sumsq = arrays["sumsq"][lo:hi]
        values = arrays["values"][lo * n_stats:hi * n_stats] \
            .reshape(hi - lo, n_stats)
        valid = arrays["valid"][lo * n_stats:hi * n_stats] \
            .reshape(hi - lo, n_stats)
        repaired, sizes = kernels.rank1_sweep(
            count, total, sumsq, parent[0], parent[1], parent[2],
            statistics, values, valid, aggregate, observed_stats)
        scores = complaint.penalty_values(repaired)
        has_nan = bool(np.isnan(scores).any() or np.isnan(sizes).any())
        order = np.lexsort((-np.abs(sizes), scores))
        if k is not None:
            order = order[:k]
        payload = ((order.astype(np.int64) + lo), scores[order],
                   sizes[order], repaired[order], has_nan)
        return payload, time.perf_counter() - t0, os.getpid()
    finally:
        release()


def _merge_range_topk(parts: list, k: int | None
                      ) -> list[tuple[int, float, float]]:
    """Exact merge of per-range top-k heaps: ``(idx, score, repaired)``.

    Ranges are fed in ascending-index order and ``heapq.merge`` is
    stable across its inputs, so ties on ``(score, -|size|)`` resolve by
    global index — the exact tie order of the full-array
    ``np.lexsort((-np.abs(sizes), scores))``.
    """
    streams = []
    for idx, scores, sizes, repaired, _ in parts:
        streams.append([(float(s), -abs(float(z)), int(i), float(r))
                        for i, s, z, r in zip(idx, scores, sizes, repaired)])
    merged = heapq.merge(*streams, key=lambda t: (t[0], t[1]))
    out: list[tuple[int, float, float]] = []
    for score, _, i, repaired in merged:
        out.append((i, score, repaired))
        if k is not None and len(out) >= k:
            break
    return out


def score_drilldown(drill_view: GroupView, prediction: RepairPrediction,
                    complaint: Complaint,
                    observed_stats: Sequence[str] = ("count", "mean", "std"),
                    k: int | None = None, sharder=None,
                    ) -> tuple[float, list[ScoredGroup]]:
    """Score every group of one drill-down view (steps 3–4 above).

    With ``k`` set, only the top-k :class:`ScoredGroup` records are
    materialized (the sweep itself always covers every group). With a
    :class:`~repro.relational.shard.ShardExecutor` the sweep is
    partitioned by candidate-group range across workers and the
    per-range top-k heaps merge with the exact lexsort tie-break —
    results are bitwise-equal to the serial sweep (any NaN score falls
    back to the global reference loop, exactly like the serial path).
    """
    keys, stats = _view_stats(drill_view)
    if not keys:
        parent = merge_states(drill_view.groups.values())
        return complaint.penalty_of_state(parent), []
    parent = stats.sequential_total()
    base_penalty = complaint.penalty_of_state(parent)
    arrays = prediction.array_form(keys)
    if arrays is None:
        RANKER_STATS["fallback"] += 1
        scored = _score_loop(drill_view, prediction, complaint, parent,
                             base_penalty, observed_stats)
        return base_penalty, scored if k is None else scored[:k]
    RANKER_STATS["array"] += 1
    values, valid = arrays

    if sharder is not None and sharder.n_parts > 1 and len(keys) > 1:
        n_stats = len(prediction.statistics)
        shared = {"count": stats.count, "total": stats.total,
                  "sumsq": stats.sumsq, "values": values.ravel(),
                  "valid": valid.ravel()}
        parent_t = (float(parent.count), float(parent.total),
                    float(parent.sumsq))
        parts = sharder.run_shared(
            _sweep_task, shared,
            [(lo, hi, n_stats, parent_t, prediction.statistics,
              complaint.aggregate, tuple(observed_stats), complaint, k)
             for lo, hi in sharder.ranges(len(keys))],
            stage="sweep")
        if any(part[4] for part in parts):
            RANKER_STATS["array"] -= 1
            RANKER_STATS["fallback"] += 1
            scored = _score_loop(drill_view, prediction, complaint, parent,
                                 base_penalty, observed_stats)
            return base_penalty, scored if k is None else scored[:k]
        scored = []
        for i, score, repaired_value in _merge_range_topk(parts, k):
            state = stats.state(i)
            scored.append(ScoredGroup(
                key=keys[i],
                coordinates=drill_view.coordinates(keys[i]),
                score=score,
                margin_gain=base_penalty - score,
                observed={s: state.statistic(s) for s in observed_stats},
                expected=dict(prediction.expected(keys[i])),
                repaired_value=repaired_value))
        return base_penalty, scored

    # f_repair + eq. 3 + tie-break sizes, through the kernel tier: apply
    # each repaired statistic in order to the running (count, total,
    # sumsq) arrays, adjust the parent rank-1 with one group replaced,
    # and accumulate Σ |expected − observed| per group. All backends are
    # bitwise-equal to the inline chain this replaced.
    repaired_values, sizes = kernels.rank1_sweep(
        stats.count, stats.total, stats.sumsq, parent.count, parent.total,
        parent.sumsq, prediction.statistics, values, valid,
        complaint.aggregate, observed_stats)
    scores = complaint.penalty_values(repaired_values)

    if np.isnan(scores).any() or np.isnan(sizes).any():
        # A NaN prediction poisons its group's score; np.lexsort would
        # park NaNs last while the reference's comparison sort leaves
        # them where failed comparisons happen to put them. The loop IS
        # the reference algorithm, so exact-ordering equality holds.
        RANKER_STATS["array"] -= 1
        RANKER_STATS["fallback"] += 1
        scored = _score_loop(drill_view, prediction, complaint, parent,
                             base_penalty, observed_stats)
        return base_penalty, scored if k is None else scored[:k]

    order = np.lexsort((-np.abs(sizes), scores))
    if k is not None:
        order = order[:k]

    scored: list[ScoredGroup] = []
    for i in order:
        state = stats.state(i)
        score = float(scores[i])
        scored.append(ScoredGroup(
            key=keys[i],
            coordinates=drill_view.coordinates(keys[i]),
            score=score,
            margin_gain=base_penalty - score,
            observed={s: state.statistic(s) for s in observed_stats},
            expected=dict(prediction.expected(keys[i])),
            repaired_value=float(repaired_values[i])))
    return base_penalty, scored


def _score_loop(drill_view: GroupView, prediction: RepairPrediction,
                complaint: Complaint, parent: AggState, base_penalty: float,
                observed_stats: Sequence[str]) -> list[ScoredGroup]:
    """Group-at-a-time fallback for non-replayable predictions."""
    scored: list[ScoredGroup] = []
    for key, state in drill_view.groups.items():
        repaired = prediction.repair_state(key, state)
        new_parent = parent.replace(state, repaired)
        score = complaint.penalty_of_state(new_parent)
        scored.append(ScoredGroup(
            key=key,
            coordinates=drill_view.coordinates(key),
            score=score,
            margin_gain=base_penalty - score,
            observed={s: state.statistic(s) for s in observed_stats},
            expected=dict(prediction.expected(key)),
            repaired_value=_composite(complaint, new_parent)))
    scored.sort(key=lambda g: (g.score, -abs(_repair_size(g))))
    return scored


def _composite(complaint: Complaint, state: AggState) -> float:
    from ..relational.aggregates import evaluate_composite
    return evaluate_composite(complaint.aggregate, state)


def _repair_size(group: ScoredGroup) -> float:
    """Tie-breaker: total relative change the repair applies."""
    total = 0.0
    for stat, expected in group.expected.items():
        observed = group.observed.get(stat, 0.0)
        total += abs(expected - observed)
    return total


def rank_candidate(cube: Cube, group_attrs: Sequence[str], next_attr: str,
                   hierarchy: str, complaint: Complaint,
                   provenance: Mapping, repairer: ModelRepairer,
                   k: int | None = None,
                   sharder=None) -> DrilldownRecommendation:
    """Rank one candidate hierarchy's drill-down groups."""
    drill_view = cube.drilldown_view(group_attrs, next_attr, provenance)
    if not drill_view.groups:
        return DrilldownRecommendation(hierarchy, next_attr,
                                       base_penalty=float("inf"))
    parallel = cube.parallel_view(group_attrs, next_attr)
    prediction = repairer.predict(parallel, cluster_attrs=group_attrs,
                                  aggregate=complaint.aggregate)
    base_penalty, scored = score_drilldown(drill_view, prediction, complaint,
                                           k=k, sharder=sharder)
    return DrilldownRecommendation(hierarchy, next_attr, base_penalty, scored)


def rank_candidates(cube: Cube, group_attrs: Sequence[str],
                    candidates: Sequence[tuple[str, str]],
                    complaint: Complaint, provenance: Mapping,
                    repairer: ModelRepairer,
                    k: int | None = None, sharder=None) -> Recommendation:
    """One full Reptile invocation over all candidate hierarchies (§4.5).

    Every candidate shares the complaint's arrays; ``k`` bounds how many
    :class:`ScoredGroup` records are materialized per hierarchy (the
    serving path passes its top-k so only what the analyst sees is built).
    ``sharder`` fans the eq.-3 sweep out over the shard pool.
    """
    per_hierarchy = {}
    for hierarchy, next_attr in candidates:
        per_hierarchy[hierarchy] = rank_candidate(
            cube, group_attrs, next_attr, hierarchy, complaint, provenance,
            repairer, k=k, sharder=sharder)
    if not per_hierarchy:
        raise ValueError("no candidate hierarchies left to drill")
    return Recommendation(complaint, per_hierarchy)
