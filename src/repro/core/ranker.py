"""Ranking drill-down groups by complaint resolution (Problem 1).

For a candidate hierarchy H with next attribute A, the ranker:

1. computes the drill-down view ``V' = drilldown(V, t_c, H)`` (the
   complaint tuple's provenance grouped one level deeper),
2. obtains expected statistics for every group from the repair function
   (fitted over all *parallel groups*, §3.2),
3. for each group ``t ∈ V'`` forms ``t'_c = G(V' ∖ {t} ∪ {f_repair(t)})``
   (eq. 3) and scores it by ``f_comp(t'_c)``,
4. returns groups ranked ascending by score (ties broken toward larger
   repairs), along with the *margin gain* — how much the penalty improved
   versus not repairing anything (the quantity mapped in Figure 18).

:func:`rank_candidates` runs this for every hierarchy that can still be
drilled and picks ``(H*, t*)`` of eq. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..relational.aggregates import AggState, merge_states
from ..relational.cube import Cube, GroupView
from .complaint import Complaint
from .repair import ModelRepairer, RepairPrediction


@dataclass(frozen=True)
class ScoredGroup:
    """One drill-down group with its repair outcome."""

    key: tuple
    coordinates: dict
    score: float              # f_comp after repairing this group
    margin_gain: float        # base penalty − score (bigger = better)
    observed: dict            # observed base statistics
    expected: dict            # model-expected statistics
    repaired_value: float     # parent aggregate after the repair


@dataclass
class DrilldownRecommendation:
    """Ranked groups for one candidate hierarchy."""

    hierarchy: str
    attribute: str
    base_penalty: float       # f_comp with no repair
    groups: list[ScoredGroup] = field(default_factory=list)

    @property
    def best(self) -> ScoredGroup | None:
        return self.groups[0] if self.groups else None

    def top(self, k: int) -> list[ScoredGroup]:
        return self.groups[:k]


@dataclass
class Recommendation:
    """Result of one Reptile invocation across all candidate hierarchies."""

    complaint: Complaint
    per_hierarchy: dict[str, DrilldownRecommendation]

    @property
    def best_hierarchy(self) -> str:
        """H* of eq. 1: the hierarchy whose best repair scores lowest."""
        return min(self.per_hierarchy,
                   key=lambda h: self.per_hierarchy[h].best.score
                   if self.per_hierarchy[h].best else float("inf"))

    @property
    def best_group(self) -> ScoredGroup:
        """t* of eq. 1."""
        return self.per_hierarchy[self.best_hierarchy].best

    def ranked(self, hierarchy: str | None = None) -> list[ScoredGroup]:
        h = hierarchy or self.best_hierarchy
        return self.per_hierarchy[h].groups


def score_drilldown(drill_view: GroupView, prediction: RepairPrediction,
                    complaint: Complaint,
                    observed_stats: Sequence[str] = ("count", "mean", "std"),
                    ) -> tuple[float, list[ScoredGroup]]:
    """Score every group of one drill-down view (steps 3–4 above)."""
    parent = merge_states(drill_view.groups.values())
    base_penalty = complaint.penalty_of_state(parent)
    scored: list[ScoredGroup] = []
    for key, state in drill_view.groups.items():
        repaired = prediction.repair_state(key, state)
        new_parent = parent.replace(state, repaired)
        score = complaint.penalty_of_state(new_parent)
        scored.append(ScoredGroup(
            key=key,
            coordinates=drill_view.coordinates(key),
            score=score,
            margin_gain=base_penalty - score,
            observed={s: state.statistic(s) for s in observed_stats},
            expected=dict(prediction.expected(key)),
            repaired_value=_composite(complaint, new_parent)))
    scored.sort(key=lambda g: (g.score, -abs(_repair_size(g))))
    return base_penalty, scored


def _composite(complaint: Complaint, state: AggState) -> float:
    from ..relational.aggregates import evaluate_composite
    return evaluate_composite(complaint.aggregate, state)


def _repair_size(group: ScoredGroup) -> float:
    """Tie-breaker: total relative change the repair applies."""
    total = 0.0
    for stat, expected in group.expected.items():
        observed = group.observed.get(stat, 0.0)
        total += abs(expected - observed)
    return total


def rank_candidate(cube: Cube, group_attrs: Sequence[str], next_attr: str,
                   hierarchy: str, complaint: Complaint,
                   provenance: Mapping, repairer: ModelRepairer,
                   ) -> DrilldownRecommendation:
    """Rank one candidate hierarchy's drill-down groups."""
    drill_view = cube.drilldown_view(group_attrs, next_attr, provenance)
    if not drill_view.groups:
        return DrilldownRecommendation(hierarchy, next_attr,
                                       base_penalty=float("inf"))
    parallel = cube.parallel_view(group_attrs, next_attr)
    prediction = repairer.predict(parallel, cluster_attrs=group_attrs,
                                  aggregate=complaint.aggregate)
    base_penalty, scored = score_drilldown(drill_view, prediction, complaint)
    return DrilldownRecommendation(hierarchy, next_attr, base_penalty, scored)


def rank_candidates(cube: Cube, group_attrs: Sequence[str],
                    candidates: Sequence[tuple[str, str]],
                    complaint: Complaint, provenance: Mapping,
                    repairer: ModelRepairer) -> Recommendation:
    """One full Reptile invocation over all candidate hierarchies (§4.5)."""
    per_hierarchy = {}
    for hierarchy, next_attr in candidates:
        per_hierarchy[hierarchy] = rank_candidate(
            cube, group_attrs, next_attr, hierarchy, complaint, provenance,
            repairer)
    if not per_hierarchy:
        raise ValueError("no candidate hierarchies left to drill")
    return Recommendation(complaint, per_hierarchy)
