"""Command-line interface: paper experiments plus the batch server.

Usage::

    python -m repro list                  # available commands
    python -m repro covid                 # Figure 13 + Tables 1-2
    python -m repro fist                  # §5.4 user study
    python -m repro accuracy --rho 0.8    # one Figure 11 sweep row
    python -m repro aic                   # Figure 16
    python -m repro vote                  # Figure 18
    python -m repro endtoend --rows 20000 # Figure 10 (reduced rows)
    python -m repro perf                  # Figure 7 matrix-op ratios
    python -m repro serve                 # cached batch serving demo
    python -m repro serve --batch b.json --csv data.csv \\
        --hierarchy geo=district,village --hierarchy time=year \\
        --measure severity

Each experiment command prints the same series the corresponding
benchmark records; ``serve`` answers a batch of complaints through the
:class:`~repro.serving.service.ExplanationService` and reports cache hit
rates and per-stage timings. See docs/cli.md for the full reference.
"""

from __future__ import annotations

import argparse
import json
import sys


def _cmd_accuracy(args: argparse.Namespace) -> int:
    from .datagen.errors import CONDITIONS
    from .experiments.accuracy import run_condition
    approaches = ("reptile", "raw", "sensitivity", "support")
    print(f"rho={args.rho}, {args.trials} trials per condition")
    print("condition                     " +
          "  ".join(f"{a:>11s}" for a in approaches))
    for condition in CONDITIONS:
        res = run_condition(condition, args.rho, n_trials=args.trials,
                            seed=args.seed, n_iterations=args.iterations)
        print(f"{condition:<29s} " +
              "  ".join(f"{res.accuracy[a]:>11.2f}" for a in approaches))
    return 0


def _cmd_covid(args: argparse.Namespace) -> int:
    from .experiments.covid import run_case_study
    summary = run_case_study(seed=args.seed, n_iterations=args.iterations)
    for approach in ("reptile", "sensitivity", "support"):
        print(f"{approach:<13s} accuracy {summary.accuracy(approach):.3f}")
    print(f"mean runtime {summary.mean_runtime():.3f}s")
    for issue_id, description, rp, st_, sp in summary.table_rows():
        marks = "".join("x" if hit else "." for hit in (rp, st_, sp))
        print(f"  {issue_id:<6s} {description:<45s} {marks}")
    return 0


def _cmd_fist(args: argparse.Namespace) -> int:
    from .experiments.fist import run_study
    summary = run_study(seed=args.seed, n_iterations=args.iterations)
    print(f"resolved {summary.n_resolved}/{summary.n_complaints} "
          f"(paper: 20/22); agreement "
          f"{summary.agreement_with_paper():.2f}")
    for r in summary.results:
        s = r.scenario
        print(f"  #{s.scenario_id:<3d} {s.kind.value:<22s} "
              f"gt={s.district} top={r.top_district} resolved={r.resolved}")
    return 0


def _cmd_aic(args: argparse.Namespace) -> int:
    from .experiments.model_quality import MODEL_NAMES, run_all
    results = run_all(seed=args.seed, n_iterations=args.iterations)
    print("dataset  " + "  ".join(f"{m:>13s}" for m in MODEL_NAMES))
    for name, r in results.items():
        print(f"{name:<8s} " + "  ".join(f"{r.deltas[m]:>13.1f}"
                                         for m in MODEL_NAMES))
    return 0


def _cmd_vote(args: argparse.Namespace) -> int:
    from .experiments.vote import run_study
    study = run_study(seed=args.seed, n_iterations=args.iterations)
    print(f"model1 top-5: {study.model1.top()}")
    print(f"model2 top-5: {study.model2.top()}")
    print(f"corr(model2 gain, -swing) = "
          f"{study.gain_swing_correlation():.3f}")
    return 0


def _cmd_endtoend(args: argparse.Namespace) -> int:
    from .experiments.endtoend import run_absentee, run_compas
    for name, runner in (("absentee", run_absentee), ("compas", run_compas)):
        result = runner(n_rows=args.rows, n_iterations=args.iterations)
        print(f"{name}: factorized {result.total_factorized:.2f}s, "
              f"matlab-style {result.total_matlab:.2f}s, "
              f"speedup {result.overall_speedup:.1f}x")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from .experiments.perf import sweep_matrix_ops
    print("d  rows     gram-ratio  left-ratio  right-ratio  mat-ratio")
    for t in sweep_matrix_ops(max_hierarchies=args.hierarchies):
        print(f"{t.n_hierarchies}  {t.n_rows:<8d} "
              f"{t.gram_dense / max(t.gram_factorized, 1e-12):>9.1f} "
              f"{t.left_dense / max(t.left_factorized, 1e-12):>10.1f} "
              f"{t.right_dense / max(t.right_factorized, 1e-12):>11.1f} "
              f"{t.materialize_dense / max(t.materialize_factorized, 1e-12):>10.1f}")
    return 0


# -- batch serving -----------------------------------------------------------------
def _demo_dataset(seed: int = 0):
    """The quickstart drought dataset: a planted error in Zata's 1986."""
    import numpy as np

    from .relational.dataset import HierarchicalDataset
    from .relational.relation import Relation
    from .relational.schema import Schema, dimension, measure

    rng = np.random.default_rng(seed)
    villages = {"Ofla": ["Adishim", "Darube", "Dinka", "Fala", "Zata"],
                "Alaje": ["Bora", "Chelena", "Dela", "Emba"]}
    rows = []
    for district, names in villages.items():
        for village in names:
            for year in range(1984, 1990):
                drought = 3.0 if year == 1986 else 0.0
                level = 5.0 + drought + rng.normal(0, 0.3)
                for _ in range(int(rng.integers(6, 12))):
                    severity = float(np.clip(level + rng.normal(0, 0.8),
                                             1, 10))
                    if village == "Zata" and year == 1986:
                        severity = max(1.0, severity - 4.0)
                    rows.append((district, village, year, severity))
    schema = Schema([dimension("district"), dimension("village"),
                     dimension("year"), measure("severity")])
    relation = Relation.from_rows(schema, rows)
    return HierarchicalDataset.build(
        relation, {"geo": ["district", "village"], "time": ["year"]},
        measure="severity")


def _demo_batch() -> list[dict]:
    """Complaints against the demo dataset; two share a view."""
    return [
        {"aggregate": "mean", "direction": "too_low",
         "coordinates": {"year": 1986},
         "group_by": ["year"], "filters": {"district": "Ofla"}},
        {"aggregate": "std", "direction": "too_high",
         "coordinates": {"year": 1986},
         "group_by": ["year"], "filters": {"district": "Ofla"}},
        {"aggregate": "mean", "direction": "too_low",
         "coordinates": {"year": 1986},
         "group_by": ["year"], "filters": {"district": "Alaje"}},
    ]


def _parse_request(spec: dict):
    """One JSON batch entry -> ComplaintRequest."""
    from .core.complaint import Complaint
    from .serving.service import ComplaintRequest
    if not isinstance(spec, dict):
        raise SystemExit(f"serve: batch entry must be an object, "
                         f"got {spec!r}")
    for required in ("aggregate", "coordinates"):
        if required not in spec:
            raise SystemExit(f"serve: batch entry missing {required!r}: "
                             f"{spec!r}")
    for field in ("coordinates", "filters"):
        mapping = spec.get(field, {})
        if not isinstance(mapping, dict) or any(
                isinstance(v, (list, dict)) for v in mapping.values()):
            raise SystemExit(
                f"serve: {field} must map attributes to scalar values: "
                f"{mapping!r}")
    direction = spec.get("direction", "too_low")
    coordinates = spec["coordinates"]
    aggregate = spec["aggregate"]
    if direction == "too_low":
        complaint = Complaint.too_low(coordinates, aggregate)
    elif direction == "too_high":
        complaint = Complaint.too_high(coordinates, aggregate)
    elif direction == "should_be":
        if "target" not in spec:
            raise SystemExit(f"serve: should_be entry needs 'target': "
                             f"{spec!r}")
        try:
            target = float(spec["target"])
        except (TypeError, ValueError):
            raise SystemExit(f"serve: should_be 'target' must be a "
                             f"number, got {spec['target']!r}")
        complaint = Complaint.should_be(coordinates, aggregate, target)
    else:
        raise SystemExit(f"serve: unknown direction {direction!r} "
                         f"(use too_low, too_high or should_be)")
    group_by = spec.get("group_by", ())
    if isinstance(group_by, str) or not all(
            isinstance(a, str) for a in group_by):
        raise SystemExit(f"serve: 'group_by' must be a list of attribute "
                         f"names, got {group_by!r}")
    return ComplaintRequest(complaint, tuple(group_by),
                            dict(spec.get("filters", {})),
                            k=spec.get("k"))


def _load_csv_dataset(args: argparse.Namespace):
    from .relational.dataset import HierarchicalDataset
    from .relational.relation import Relation
    from .relational.schema import Schema, dimension, measure

    hierarchies: dict[str, list[str]] = {}
    for spec in args.hierarchy or ():
        name, _, attrs = spec.partition("=")
        if not attrs:
            raise SystemExit(
                f"serve: bad --hierarchy {spec!r} (want name=attr1,attr2)")
        hierarchies[name] = attrs.split(",")
    if not hierarchies or not args.measure:
        raise SystemExit("serve: --csv needs --hierarchy and --measure")
    def auto(text: str):
        """Numeric-looking CSV cells become numbers, so that JSON batch
        coordinates (which are typed) match the loaded dimension values.
        Only canonical spellings convert — "01" stays a string — so two
        distinct cells can never collapse into one dimension value."""
        for parse in (int, float):
            try:
                value = parse(text)
            except ValueError:
                continue
            if str(value) == text:
                return value
        return text

    names = [a for attrs in hierarchies.values() for a in attrs]
    schema = Schema([dimension(a) for a in names] + [measure(args.measure)])
    relation = Relation.from_csv(args.csv, schema,
                                 converters={a: auto for a in names})
    return HierarchicalDataset.build(relation, hierarchies, args.measure)


def _set_kernel_backend(args: argparse.Namespace, command: str) -> None:
    """Apply ``--kernels`` (resolution errors become CLI errors)."""
    if getattr(args, "kernels", None) is None:
        return
    from . import kernels

    try:
        resolved = kernels.set_backend(args.kernels)
    except kernels.KernelBackendError as exc:
        raise SystemExit(f"{command}: {exc}")
    print(f"kernel backend: {resolved}")


def _cmd_serve(args: argparse.Namespace) -> int:
    from .core.session import ReptileConfig
    from .serving.service import ExplanationService

    _set_kernel_backend(args, "serve")
    if args.csv:
        dataset = _load_csv_dataset(args)
    else:
        if args.hierarchy or args.measure:
            raise SystemExit("serve: --hierarchy/--measure only apply "
                             "with --csv (no dataset file was given)")
        dataset = _demo_dataset(seed=args.seed)
    if args.batch:
        try:
            with open(args.batch) as f:
                specs = json.load(f)
        except OSError as exc:
            raise SystemExit(f"serve: cannot read batch file: {exc}")
        except json.JSONDecodeError as exc:
            raise SystemExit(f"serve: batch file is not valid JSON: {exc}")
        if not isinstance(specs, list):
            raise SystemExit("serve: batch file must hold a JSON list")
    else:
        specs = _demo_batch()
    requests = [_parse_request(spec) for spec in specs]

    if args.cache_entries < 1:
        raise SystemExit("serve: --cache-entries must be >= 1")
    service = ExplanationService(
        max_entries=args.cache_entries,
        config=ReptileConfig(n_em_iterations=args.iterations, top_k=args.k,
                             shards=args.shards,
                             workers=args.shard_workers,
                             spill_dir=args.spill_dir))
    service.register("data", dataset)
    print(f"{dataset!r}")
    print(f"batch: {len(requests)} complaints")

    for run in range(args.repeat):
        result = service.submit_batch("data", requests)
        label = "cold" if run == 0 else "warm"
        print(f"\npass {run + 1} ({label}): {result.total_seconds:.3f}s "
              f"over {result.n_views} distinct view(s)")
        if run == 0:
            for item in result.items:
                if item.error is not None:
                    print(f"  {item.request.complaint} -> error: "
                          f"{item.error}")
                    continue
                best = item.recommendation.best_group
                if best is None:
                    print(f"  {item.request.complaint} -> no drill-down "
                          f"groups match these coordinates")
                    continue
                print(f"  {item.request.complaint} -> drill "
                      f"{item.recommendation.best_hierarchy!r}, "
                      f"best group {best.coordinates} "
                      f"(margin gain {best.margin_gain:.3f})")

    stats = service.stats()
    cache = stats["cache"]
    print(f"\ncache: {cache['entries']} entries, "
          f"{cache['hits']} hits / {cache['misses']} misses "
          f"(hit rate {cache['hit_rate']:.2f}), "
          f"{cache['evictions']} evictions")
    for kind, timing in sorted(stats["stages"].items()):
        print(f"  stage {kind:<8s} {timing['computations']:>4d} "
              f"computations  {timing['seconds']:.3f}s")
    rec = stats["recommend"]
    print(f"  recommend      {rec['count']:>4d} requests      "
          f"{rec['seconds']:.3f}s")
    return 0


def _parse_delta_rows(specs, schema) -> list[tuple]:
    """JSON delta entries -> row tuples in schema order."""
    rows = []
    names = list(schema.names)
    for spec in specs:
        if isinstance(spec, dict):
            missing = [n for n in names if n not in spec]
            if missing:
                raise SystemExit(f"ingest: row is missing columns "
                                 f"{missing}: {spec!r}")
            rows.append(tuple(spec[n] for n in names))
        elif isinstance(spec, list):
            if len(spec) != len(names):
                raise SystemExit(f"ingest: row of width {len(spec)} does "
                                 f"not match schema {names}: {spec!r}")
            rows.append(tuple(spec))
        else:
            raise SystemExit(f"ingest: each row must be an object or a "
                             f"list, got {spec!r}")
    return rows


def _load_delta_file(path: str) -> list:
    try:
        with open(path) as f:
            specs = json.load(f)
    except OSError as exc:
        raise SystemExit(f"ingest: cannot read rows file: {exc}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"ingest: rows file is not valid JSON: {exc}")
    if not isinstance(specs, list):
        raise SystemExit("ingest: rows file must hold a JSON list")
    return specs


def _demo_delta() -> list[dict]:
    """Appends for the demo dataset: fresh severe drought reports from a
    village the base data has never seen."""
    return [{"district": "Ofla", "village": "Mehoni", "year": 1986,
             "severity": 2.0} for _ in range(4)]


def _cmd_ingest(args: argparse.Namespace) -> int:
    import time

    from .core.complaint import Complaint
    from .core.session import ReptileConfig
    from .serving.service import ExplanationService

    _set_kernel_backend(args, "ingest")
    if args.csv:
        dataset = _load_csv_dataset(args)
    else:
        if args.hierarchy or args.measure:
            raise SystemExit("ingest: --hierarchy/--measure only apply "
                             "with --csv (no dataset file was given)")
        dataset = _demo_dataset(seed=args.seed)
    schema = dataset.relation.schema
    if args.rows:
        appended = _parse_delta_rows(_load_delta_file(args.rows), schema)
    elif args.csv:
        raise SystemExit("ingest: --csv needs --rows FILE")
    else:
        appended = _parse_delta_rows(_demo_delta(), schema)
    retracted = _parse_delta_rows(_load_delta_file(args.retract), schema) \
        if args.retract else []

    service = ExplanationService(
        config=ReptileConfig(n_em_iterations=args.iterations, top_k=args.k,
                             shards=args.shards,
                             workers=args.shard_workers,
                             spill_dir=args.spill_dir))
    engine = service.register("data", dataset)
    print(f"{dataset!r}")

    # Warm the serving state the way a live dashboard would: an open
    # session with a recommendation in flight.
    sid = None
    if not args.csv:
        sid = service.open_session("data", group_by=["year"],
                                   filters={"district": "Ofla"})
        service.recommend(sid, Complaint.too_low({"year": 1986}, "mean"))

    start = time.perf_counter()
    info = service.ingest("data", appended, retract=retracted)
    elapsed = time.perf_counter() - start
    print(f"ingested +{info['appended']} -{info['retracted']} rows in "
          f"{elapsed:.4f}s -> data version {info['version']}")
    print(f"cache: {info['cache_patched']} entries patched in place, "
          f"{info['cache_retained']} retained, "
          f"{len(service.cache)} total")
    print(f"relation now holds {len(engine.dataset.relation)} rows")

    if sid is not None:
        session = service.session(sid)
        session.sync()  # a no-op here: auto-sync sessions fast-forward
        rec = service.recommend(sid, Complaint.too_low({"year": 1986},
                                                       "mean"))
        best = rec.best_group
        if best is None:
            print("post-ingest recommendation: no matching groups")
        else:
            print(f"post-ingest recommendation: drill "
                  f"{rec.best_hierarchy!r}, best group {best.coordinates} "
                  f"(margin gain {best.margin_gain:.3f})")
    return 0


def _cmd_serve_http(args: argparse.Namespace) -> int:
    import time

    from .core.session import ReptileConfig
    from .serving.server import ServerApp, ReptileHTTPServer
    from .serving.service import ExplanationService

    _set_kernel_backend(args, "serve-http")
    if args.csv:
        dataset = _load_csv_dataset(args)
    else:
        if args.hierarchy or args.measure:
            raise SystemExit("serve-http: --hierarchy/--measure only "
                             "apply with --csv (no dataset file was given)")
        dataset = _demo_dataset(seed=args.seed)
    if args.cache_entries < 1:
        raise SystemExit("serve-http: --cache-entries must be >= 1")
    service = ExplanationService(
        max_entries=args.cache_entries,
        config=ReptileConfig(n_em_iterations=args.iterations, top_k=args.k,
                             shards=args.shards,
                             workers=args.shard_workers,
                             spill_dir=args.spill_dir))
    service.register("data", dataset)
    app = ServerApp(service, max_concurrent=args.workers,
                    max_queue=args.queue,
                    batch_window_seconds=args.batch_window,
                    request_timeout=args.request_timeout)
    server = ReptileHTTPServer((args.host, args.port), app)
    host, port = server.server_address[:2]
    print(f"{dataset!r}")
    print(f"serving dataset 'data' on http://{host}:{port} "
          f"({args.workers} workers, queue {args.queue}, "
          f"batch window {args.batch_window * 1000:.1f}ms)")
    print("try:")
    print(f"  curl http://{host}:{port}/healthz")
    print(f"  curl -X POST http://{host}:{port}/datasets/data/recommend "
          f"-d '{{\"aggregate\": \"mean\", \"direction\": \"too_low\", "
          f"\"coordinates\": {{\"year\": 1986}}, "
          f"\"group_by\": [\"year\"]}}'")
    print("Ctrl-C drains in-flight requests and exits.")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\ndraining...")
        start = time.perf_counter()
        drained = server.shutdown_gracefully(timeout=args.drain_timeout)
        verb = "drained" if drained else "gave up draining"
        print(f"{verb} after {time.perf_counter() - start:.2f}s")
        stats = app.stats_payload()
        for endpoint, row in sorted(stats["endpoints"].items()):
            print(f"  {endpoint:<16s} {row['count']:>6d} requests  "
                  f"p50 {row['p50_seconds'] * 1000:.1f}ms  "
                  f"p99 {row['p99_seconds'] * 1000:.1f}ms")
        cache = stats["cache"]
        print(f"  cache hit rate {cache['hit_rate']:.2f}, "
              f"batch collapse ratio "
              f"{stats['batching']['collapse_ratio']:.2f}")
    return 0


COMMANDS = {
    "accuracy": (_cmd_accuracy, "Figure 11 synthetic-accuracy sweep"),
    "covid": (_cmd_covid, "Figure 13 + Tables 1-2 COVID case study"),
    "fist": (_cmd_fist, "§5.4 FIST user-study replay"),
    "aic": (_cmd_aic, "Figure 16 model-quality ΔAIC"),
    "vote": (_cmd_vote, "Figure 18 vote case study"),
    "endtoend": (_cmd_endtoend, "Figure 10 end-to-end runtime"),
    "perf": (_cmd_perf, "Figure 7 matrix-operation ratios"),
    "serve": (_cmd_serve, "answer a complaint batch via the caching service"),
    "serve-http": (_cmd_serve_http,
                   "serve explanation queries over a concurrent HTTP API"),
    "ingest": (_cmd_ingest,
               "apply an append/retract delta without a full rebuild"),
}

EPILOGS = {
    "accuracy": """\
Replays the §5.2.1 synthetic sweep: for each error condition, plants an
error, complains about the affected group, and scores how often each
approach ranks the planted group first. Prints one row per condition with
per-approach accuracy at the chosen correlation strength --rho.

example:
  python -m repro accuracy --rho 0.8 --trials 20""",
    "covid": """\
Runs the Figure 13 / Tables 1-2 COVID case study: replays the recorded
data issues, reports per-approach accuracy, mean runtime, and an x/. grid
of which approach surfaced each issue.

example:
  python -m repro covid --iterations 10""",
    "fist": """\
Replays the §5.4 FIST user-study scenarios: each scenario's complaint is
submitted and the top-ranked district is compared with the ground truth,
printing per-scenario resolution and overall agreement with the paper.

example:
  python -m repro fist""",
    "aic": """\
Figure 16 model quality: fits each candidate model family per dataset and
prints ΔAIC versus the best (lower is better, 0 marks the winner).

example:
  python -m repro aic --iterations 10""",
    "vote": """\
Figure 18 vote case study: two model configurations rank precincts; also
prints the correlation between model-2 margin gains and vote swing.

example:
  python -m repro vote""",
    "endtoend": """\
Figure 10 end-to-end runtime on the absentee and compas workloads:
factorized versus materialised Matlab-style training, with the overall
speedup. --rows subsamples for a quicker run.

example:
  python -m repro endtoend --rows 20000""",
    "perf": """\
Figure 7 matrix-operation cost ratios (dense / factorized) for gram,
left-multiply, right-multiply and materialize while sweeping the number
of one-attribute hierarchies up to --hierarchies.

example:
  python -m repro perf --hierarchies 4""",
    "serve": """\
Answers a batch of independent complaints through the serving layer:
complaints sharing a (group-by, filters) view are answered from one
shared roll-up + model-fit pass, and every pass after the first is served
warm from the aggregate cache. Prints per-complaint recommendations, then
cache hit rate and per-stage timings. With no --csv/--batch a built-in
demo dataset (the quickstart drought survey) and batch are used.

batch JSON: a list of objects with keys
  aggregate    count | sum | mean | std | var
  direction    too_low | too_high | should_be  (should_be needs "target")
  coordinates  {attr: value} identifying the complained tuple
  group_by     view group-by attributes (optional)
  filters      view filters (optional)
  k            per-request top-k override (optional)

examples:
  python -m repro serve --repeat 2
  python -m repro serve --batch batch.json --csv survey.csv \\
      --hierarchy geo=district,village --hierarchy time=year \\
      --measure severity""",
    "serve-http": """\
Starts a threaded HTTP/JSON server over the explanation service: many
sessions across many datasets run concurrently under per-dataset
reader/writer locks (queries share a read lock and see one data version
per response; ingest takes the exclusive write lock), concurrent
same-view one-shot recommends coalesce through a short batching window,
and a bounded worker pool + queue answers overload with 429/503 +
Retry-After. GET /stats reports per-endpoint p50/p99 latency, cache hit
rate and the batch collapse ratio. Ctrl-C drains in-flight requests
before exiting. With no --csv the built-in demo drought dataset is
registered as 'data'.

endpoints:
  GET  /healthz, /stats, /datasets, /datasets/{d}
  POST /datasets/{d}/sessions            open a session
  POST /datasets/{d}/recommend           one-shot complaint (batched)
  POST /datasets/{d}/ingest              append/retract rows
  POST /datasets/{d}/refresh             invalidate + rebuild
  GET  /sessions/{s}[/view]              session info / current view
  POST /sessions/{s}/recommend|drill|sync|close

examples:
  python -m repro serve-http --port 8080 --workers 8
  curl -X POST localhost:8080/datasets/data/recommend \\
      -d '{"aggregate": "mean", "direction": "too_low",
           "coordinates": {"year": 1986}, "group_by": ["year"],
           "filters": {"district": "Ofla"}}'""",
    "ingest": """\
Applies an append/retract delta through the incremental delta-update
engine: the relation extends its encoded columns, the cube merges a
bincount of just the delta batch, hierarchy paths extend with new
root-to-leaf paths, and cached aggregates are patched or retained under
a new versioned fingerprint — no full rebuild, no wholesale cache
invalidation. Open sessions fast-forward to the new data version.
Prints the ingest timing, the cache patch counters, and (for the demo
dataset) a post-ingest recommendation.

rows JSON: a list of rows, each either an object keyed by column name
  {"district": "Ofla", "village": "Mehoni", "year": 1986,
   "severity": 2.0}
or a list in schema order. --retract takes the same format; each
retracted row must match an existing row on every column.

--kernels selects the fused-kernel backend for the delta-merge and
recommend kernels (same choices as serve); --shards/--shard-workers run
the sharded pipeline and --spill-dir puts its shard blocks out of core.

examples:
  python -m repro ingest
  python -m repro ingest --kernels numpy --shards 4 --shard-workers 2
  python -m repro ingest --rows new_rows.json --retract corrections.json \\
      --csv survey.csv --hierarchy geo=district,village \\
      --hierarchy time=year --measure severity""",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reptile reproduction experiment runner and server")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available commands")
    for name, (_, help_text) in COMMANDS.items():
        p = sub.add_parser(
            name, help=help_text, description=help_text,
            epilog=EPILOGS.get(name),  # tolerate a command with no epilog
            formatter_class=argparse.RawDescriptionHelpFormatter)
        p.add_argument("--seed", type=int, default=0,
                       help="random seed (default 0)")
        p.add_argument("--iterations", type=int, default=10,
                       help="EM iterations (default 10)")
        if name == "accuracy":
            p.add_argument("--rho", type=float, default=0.8,
                           help="auxiliary correlation strength")
            p.add_argument("--trials", type=int, default=20,
                           help="trials per condition")
        if name == "endtoend":
            p.add_argument("--rows", type=int, default=20000,
                           help="rows per workload")
        if name == "perf":
            p.add_argument("--hierarchies", type=int, default=4,
                           help="max hierarchies to sweep to")
        if name == "serve":
            p.add_argument("--batch", metavar="FILE",
                           help="JSON batch file (default: demo batch)")
        if name in ("serve", "serve-http", "ingest"):
            p.add_argument("--csv", metavar="FILE",
                           help="CSV dataset (default: demo dataset)")
            p.add_argument("--hierarchy", action="append", metavar="NAME=A,B",
                           help="hierarchy spec for --csv (repeatable)")
            p.add_argument("--measure", help="measure column for --csv")
            p.add_argument("--k", type=int, default=5,
                           help="top groups per recommendation")
            p.add_argument("--shards", type=int, default=0,
                           help="partition the cube into N shards "
                                "(hierarchy-prefix key; 0/1 = unsharded)")
            p.add_argument("--shard-workers", type=int, default=0,
                           help="worker processes for sharded cube builds "
                                "(0 = serial in-process shards)")
            p.add_argument("--spill-dir", metavar="DIR", default=None,
                           help="out-of-core mode: write shard blocks to "
                                "this directory and memory-map them "
                                "instead of using shared memory (bounds "
                                "coordinator RSS; needs --shards > 1)")
            p.add_argument("--kernels", choices=("auto", "numpy", "numba",
                                                 "plain", "off"),
                           default=None,
                           help="fused-kernel backend (default: the "
                                "REPTILE_KERNELS env var, else auto)")
        if name == "serve":
            p.add_argument("--repeat", type=int, default=1,
                           help="serve the batch N times (warm passes "
                                "show the cache, default 1)")
        if name in ("serve", "serve-http"):
            p.add_argument("--cache-entries", type=int, default=4096,
                           help="aggregate-cache capacity")
        if name == "serve-http":
            p.add_argument("--host", default="127.0.0.1",
                           help="bind address (default 127.0.0.1)")
            p.add_argument("--port", type=int, default=8080,
                           help="bind port, 0 picks a free one "
                                "(default 8080)")
            p.add_argument("--workers", type=int, default=8,
                           help="max concurrently executing requests")
            p.add_argument("--queue", type=int, default=64,
                           help="max requests waiting for a worker")
            p.add_argument("--batch-window", type=float, default=0.002,
                           metavar="SECONDS",
                           help="cross-request batching window "
                                "(default 0.002)")
            p.add_argument("--drain-timeout", type=float, default=10.0,
                           metavar="SECONDS",
                           help="graceful-shutdown drain budget")
            p.add_argument("--request-timeout", type=float, default=None,
                           metavar="SECONDS",
                           help="per-request deadline for read endpoints; "
                                "over-deadline requests get 503 + "
                                "retry_after (default: no deadline)")
        if name == "ingest":
            p.add_argument("--rows", metavar="FILE",
                           help="JSON rows to append (default: demo delta)")
            p.add_argument("--retract", metavar="FILE",
                           help="JSON rows to retract")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command in (None, "list"):
        for name, (_, help_text) in COMMANDS.items():
            print(f"{name:<10s} {help_text}")
        return 0
    handler, _ = COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
