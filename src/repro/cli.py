"""Command-line interface: regenerate any paper experiment.

Usage::

    python -m repro list                  # available experiments
    python -m repro covid                 # Figure 13 + Tables 1-2
    python -m repro fist                  # §5.4 user study
    python -m repro accuracy --rho 0.8    # one Figure 11 sweep row
    python -m repro aic                   # Figure 16
    python -m repro vote                  # Figure 18
    python -m repro endtoend --rows 20000 # Figure 10 (reduced rows)

Each command prints the same series the corresponding benchmark records.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_accuracy(args: argparse.Namespace) -> int:
    from .datagen.errors import CONDITIONS
    from .experiments.accuracy import run_condition
    approaches = ("reptile", "raw", "sensitivity", "support")
    print(f"rho={args.rho}, {args.trials} trials per condition")
    print("condition                     " +
          "  ".join(f"{a:>11s}" for a in approaches))
    for condition in CONDITIONS:
        res = run_condition(condition, args.rho, n_trials=args.trials,
                            seed=args.seed, n_iterations=args.iterations)
        print(f"{condition:<29s} " +
              "  ".join(f"{res.accuracy[a]:>11.2f}" for a in approaches))
    return 0


def _cmd_covid(args: argparse.Namespace) -> int:
    from .experiments.covid import run_case_study
    summary = run_case_study(seed=args.seed, n_iterations=args.iterations)
    for approach in ("reptile", "sensitivity", "support"):
        print(f"{approach:<13s} accuracy {summary.accuracy(approach):.3f}")
    print(f"mean runtime {summary.mean_runtime():.3f}s")
    for issue_id, description, rp, st_, sp in summary.table_rows():
        marks = "".join("x" if hit else "." for hit in (rp, st_, sp))
        print(f"  {issue_id:<6s} {description:<45s} {marks}")
    return 0


def _cmd_fist(args: argparse.Namespace) -> int:
    from .experiments.fist import run_study
    summary = run_study(seed=args.seed, n_iterations=args.iterations)
    print(f"resolved {summary.n_resolved}/{summary.n_complaints} "
          f"(paper: 20/22); agreement "
          f"{summary.agreement_with_paper():.2f}")
    for r in summary.results:
        s = r.scenario
        print(f"  #{s.scenario_id:<3d} {s.kind.value:<22s} "
              f"gt={s.district} top={r.top_district} resolved={r.resolved}")
    return 0


def _cmd_aic(args: argparse.Namespace) -> int:
    from .experiments.model_quality import MODEL_NAMES, run_all
    results = run_all(seed=args.seed, n_iterations=args.iterations)
    print("dataset  " + "  ".join(f"{m:>13s}" for m in MODEL_NAMES))
    for name, r in results.items():
        print(f"{name:<8s} " + "  ".join(f"{r.deltas[m]:>13.1f}"
                                         for m in MODEL_NAMES))
    return 0


def _cmd_vote(args: argparse.Namespace) -> int:
    from .experiments.vote import run_study
    study = run_study(seed=args.seed, n_iterations=args.iterations)
    print(f"model1 top-5: {study.model1.top()}")
    print(f"model2 top-5: {study.model2.top()}")
    print(f"corr(model2 gain, -swing) = "
          f"{study.gain_swing_correlation():.3f}")
    return 0


def _cmd_endtoend(args: argparse.Namespace) -> int:
    from .experiments.endtoend import run_absentee, run_compas
    for name, runner in (("absentee", run_absentee), ("compas", run_compas)):
        result = runner(n_rows=args.rows, n_iterations=args.iterations)
        print(f"{name}: factorized {result.total_factorized:.2f}s, "
              f"matlab-style {result.total_matlab:.2f}s, "
              f"speedup {result.overall_speedup:.1f}x")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from .experiments.perf import sweep_matrix_ops
    print("d  rows     gram-ratio  left-ratio  right-ratio  mat-ratio")
    for t in sweep_matrix_ops(max_hierarchies=args.hierarchies):
        print(f"{t.n_hierarchies}  {t.n_rows:<8d} "
              f"{t.gram_dense / max(t.gram_factorized, 1e-12):>9.1f} "
              f"{t.left_dense / max(t.left_factorized, 1e-12):>10.1f} "
              f"{t.right_dense / max(t.right_factorized, 1e-12):>11.1f} "
              f"{t.materialize_dense / max(t.materialize_factorized, 1e-12):>10.1f}")
    return 0


COMMANDS = {
    "accuracy": (_cmd_accuracy, "Figure 11 synthetic-accuracy sweep"),
    "covid": (_cmd_covid, "Figure 13 + Tables 1-2 COVID case study"),
    "fist": (_cmd_fist, "§5.4 FIST user-study replay"),
    "aic": (_cmd_aic, "Figure 16 model-quality ΔAIC"),
    "vote": (_cmd_vote, "Figure 18 vote case study"),
    "endtoend": (_cmd_endtoend, "Figure 10 end-to-end runtime"),
    "perf": (_cmd_perf, "Figure 7 matrix-operation ratios"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Reptile reproduction experiment runner")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    for name, (_, help_text) in COMMANDS.items():
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--iterations", type=int, default=10,
                       help="EM iterations")
        if name == "accuracy":
            p.add_argument("--rho", type=float, default=0.8)
            p.add_argument("--trials", type=int, default=20)
        if name == "endtoend":
            p.add_argument("--rows", type=int, default=20000)
        if name == "perf":
            p.add_argument("--hierarchies", type=int, default=4)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command in (None, "list"):
        for name, (_, help_text) in COMMANDS.items():
            print(f"{name:<10s} {help_text}")
        return 0
    handler, _ = COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
