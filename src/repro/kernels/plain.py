"""The plain tier: pre-kernel-tier NumPy code paths, frozen verbatim.

These are the exact operations the relational/core layers ran before the
fused-kernel tier existed — the ``np.unique``-based composite group-by,
the stable argsort + double-``searchsorted`` sort-merge join, and the
eq.-3 score sweep written as one ufunc chain. They serve two roles:

1. the universal fallback every fused backend's guards drop into, and
2. the equality gate — every fused result must be bitwise-equal to the
   plain result, which the property suite and fig23 check in-run (the
   plain tier itself is pinned to the frozen oracles ``rowref``,
   ``rankref``, ``factorized/reference.py`` and ``deltaref`` by the
   pre-existing test suites).

Do not "optimize" this module; that is what the other backends are for.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..relational.aggregates import (evaluate_composite_arrays,
                                     with_statistic_arrays)


def group_codes(combined: np.ndarray, radix: int
                ) -> tuple[np.ndarray, np.ndarray]:
    """Sorted-unique group ids of mixed-radix keys: ``(gids, uniq)``.

    ``gids[i]`` is the rank of ``combined[i]`` among the distinct keys in
    ascending key order; ``uniq`` is those distinct keys, sorted. The
    dense counting-sort path (small radix) and the ``np.unique`` path
    (anything else) are exactly the two branches ``combine_codes`` always
    had.
    """
    n_rows = len(combined)
    if radix <= max(8 * n_rows, 1 << 16):
        # Dense-radix fast path: counting sort beats np.unique's argsort.
        occupied = np.zeros(radix, dtype=bool)
        occupied[combined] = True
        uniq = np.flatnonzero(occupied)
        lookup = np.empty(radix, dtype=np.int64)
        lookup[uniq] = np.arange(len(uniq), dtype=np.int64)
        gids = lookup[combined]
        return gids, uniq
    uniq, gids = np.unique(combined, return_inverse=True)
    return gids.reshape(-1), uniq


def join_probe(combined_l: np.ndarray, combined_r: np.ndarray,
               radix: int) -> tuple[np.ndarray, np.ndarray]:
    """Matching row pairs of an equi-join over comparable int64 keys.

    Returns ``(l_idx, r_pos)``: for every match, the left row index and
    the *position into* ``combined_r`` (callers map positions through
    their own validity filters). Left rows appear in ascending order;
    within one left row, right matches keep their original order — the
    stable sort-merge contract the row paths were validated against.
    """
    from ..relational.encoding import expand_ranges
    r_order = np.argsort(combined_r, kind="stable")
    r_sorted = combined_r[r_order]
    starts = np.searchsorted(r_sorted, combined_l, side="left")
    ends = np.searchsorted(r_sorted, combined_l, side="right")
    counts = ends - starts
    l_idx = np.repeat(np.arange(len(combined_l), dtype=np.int64), counts)
    r_pos = r_order[expand_ranges(starts, counts)]
    return l_idx, r_pos


def join_multiply(combined_l: np.ndarray, combined_r: np.ndarray,
                  left_counts: np.ndarray, right_counts: np.ndarray,
                  radix: int
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Join-multiply: the probe of :func:`join_probe` plus the count
    product per emitted pair: ``(l_idx, r_pos, products)``.

    ``right_counts`` is aligned with ``combined_r`` (the caller already
    applied its validity filter to both).
    """
    l_idx, r_pos = join_probe(combined_l, combined_r, radix)
    products = left_counts[l_idx] * right_counts[r_pos]
    return l_idx, r_pos, products


def rank1_sweep(count: np.ndarray, total: np.ndarray, sumsq: np.ndarray,
                parent_count: float, parent_total: float,
                parent_sumsq: float, statistics: Sequence[str],
                values: np.ndarray, valid: np.ndarray, aggregate: str,
                observed_stats: Sequence[str]
                ) -> tuple[np.ndarray, np.ndarray]:
    """The eq.-3 score sweep: ``(repaired_values, sizes)`` per group.

    For every group: apply the repaired statistics in order to its
    ``(count, total, sumsq)`` state, form the parent with that one group
    replaced (a rank-1 adjustment), and evaluate the complained
    composite on it. ``sizes`` is the tie-break magnitude
    ``Σ_j |values[:, j] − observed_j|`` over the valid predictions,
    where ``observed_j`` is the group's own statistic when ``stat`` is in
    ``observed_stats`` and ``0.0`` otherwise.

    This is the exact ufunc chain ``score_drilldown`` ran inline before
    the kernel tier; the fused backends must match it bitwise.
    """
    r_count, r_total, r_sumsq = count, total, sumsq
    for j, stat in enumerate(statistics):
        ok = valid[:, j]
        if not ok.any():
            continue
        nc, nt, nq = with_statistic_arrays(r_count, r_total, r_sumsq,
                                           stat, values[:, j])
        r_count = np.where(ok, nc, r_count)
        r_total = np.where(ok, nt, r_total)
        r_sumsq = np.where(ok, nq, r_sumsq)

    p_count = (parent_count - count) + r_count
    p_total = (parent_total - total) + r_total
    p_sumsq = (parent_sumsq - sumsq) + r_sumsq
    repaired_values = evaluate_composite_arrays(aggregate, p_count,
                                                p_total, p_sumsq)

    sizes = np.zeros(len(count))
    for j, stat in enumerate(statistics):
        observed = evaluate_composite_arrays(stat, count, total, sumsq) \
            if stat in observed_stats else 0.0
        sizes = np.where(valid[:, j],
                         sizes + np.abs(values[:, j] - observed), sizes)
    return repaired_values, sizes
