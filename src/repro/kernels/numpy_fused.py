"""The fused pure-NumPy backend: fewer passes, zero new dependencies.

Three dtype-specialized fast paths, each bitwise-equal to
:mod:`repro.kernels.plain` (identical IEEE operations in identical
order; what changes is which *dead* operations are skipped and how many
intermediates are materialized):

* :func:`group_codes` — int64 radix group-by by counting instead of
  sorting. The plain tier only counts when the radix is within ``8n``;
  this tier raises the ceiling to a fixed table budget, turning the
  ``np.unique`` (argsort) band between ``8n`` and ``2^24`` into two
  O(n + radix) scatter/gather passes.
* :func:`join_probe` / :func:`join_multiply` — when every right-side key
  is distinct (the common shape for factorized per-attribute vectors),
  the stable argsort + double ``searchsorted`` sort-merge collapses into
  one scatter and one gather against a radix-sized position table.
* :func:`rank1_sweep` — the eq.-3 sweep with the dead preamble of each
  ``with_statistic`` branch skipped (the plain chain always derives
  mean *and* std even when the branch uses only one), the
  ``np.where`` merges elided when a statistic is valid for every group
  (``where(True, x, y) ≡ x``), and the rank-1 parent adjustment done
  with in-place adds. Same operations on every reachable element, so
  results are bit-for-bit identical.

Every function returns ``None`` when its guard declines (radix beyond
the table budget, duplicate probe keys); the dispatcher then runs the
plain tier and counts a fallback.
"""

from __future__ import annotations

import threading
from typing import Sequence

import numpy as np

from ..relational.aggregates import (AggregateError,
                                     evaluate_composite_arrays,
                                     from_stats_arrays, mean_array,
                                     var_array)

#: Largest radix for which the counting paths allocate their tables
#: (~2^24 entries ≈ 134 MB of int64 scratch at the ceiling). Beyond it
#: the scatter tables would thrash memory worse than the sort they
#: replace, so the guard declines and the plain tier runs.
DENSE_RADIX_MAX = 1 << 24


def group_codes(combined: np.ndarray, radix: int
                ) -> tuple[np.ndarray, np.ndarray] | None:
    """Counting-sort group-by; None when the radix exceeds the budget.

    Same two scatter/gather passes as the plain tier's dense branch, but
    with an ``int32`` rank table (group ranks are bounded by the row
    count, so the narrow table always fits — the widening cast at the
    end reproduces the plain tier's ``int64`` gids bit for bit) and both
    radix-sized tables kept in a per-thread workspace: allocating them
    fresh per call costs a page fault per touched page, which dominates
    the kernel once the radix outgrows the row count. The occupied table
    is re-zeroed by memset on every call, so a dirty workspace can never
    leak state between calls; at the ceiling the workspace retains
    ~``5 * DENSE_RADIX_MAX`` bytes per group-by-running thread.
    """
    n_rows = len(combined)
    if radix > max(8 * n_rows, DENSE_RADIX_MAX):
        return None
    occupied, lookup = _group_workspace(radix)
    occupied[combined] = True
    uniq = np.flatnonzero(occupied)
    lookup[uniq] = np.arange(len(uniq), dtype=np.int32)
    gids = lookup[combined].astype(np.int64)
    return gids, uniq


_workspaces = threading.local()


def _group_workspace(radix: int) -> tuple[np.ndarray, np.ndarray]:
    """This thread's ``(occupied, lookup)`` tables, zeroed/sized."""
    occupied = getattr(_workspaces, "occupied", None)
    if occupied is None or len(occupied) < radix:
        occupied = _workspaces.occupied = np.zeros(radix, dtype=bool)
        _workspaces.lookup = np.empty(radix, dtype=np.int32)
    else:
        occupied = occupied[:radix]
        occupied[:] = False
    return occupied, _workspaces.lookup[:radix]


def _probe_table(combined_r: np.ndarray, radix: int) -> np.ndarray | None:
    """Scatter-probe table ``row_of[key] = position``; None on guards.

    Declines when the radix exceeds the table budget or any right key
    occurs more than once (the scatter would silently drop matches).
    """
    n_right = len(combined_r)
    if radix > DENSE_RADIX_MAX or n_right == 0:
        return None
    row_of = np.full(radix, -1, dtype=np.int64)
    positions = np.arange(n_right, dtype=np.int64)
    row_of[combined_r] = positions
    # Duplicate keys overwrite earlier positions; detect via one gather.
    if not np.array_equal(row_of[combined_r], positions):
        return None
    return row_of


def join_probe(combined_l: np.ndarray, combined_r: np.ndarray,
               radix: int) -> tuple[np.ndarray, np.ndarray] | None:
    """Scatter-probe equi-join for unique right keys; None on guards.

    With at most one match per left row, the plain sort-merge emits left
    rows in ascending order with that single match each — exactly what
    one gather through the position table produces.
    """
    row_of = _probe_table(combined_r, radix)
    if row_of is None:
        return None
    matches = row_of[combined_l]
    l_idx = np.flatnonzero(matches >= 0)
    r_pos = matches[l_idx]
    return l_idx, r_pos


def join_multiply(combined_l: np.ndarray, combined_r: np.ndarray,
                  left_counts: np.ndarray, right_counts: np.ndarray,
                  radix: int
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Probe + count product in one go; None on guards."""
    probed = join_probe(combined_l, combined_r, radix)
    if probed is None:
        return None
    l_idx, r_pos = probed
    products = left_counts[l_idx] * right_counts[r_pos]
    return l_idx, r_pos, products


def _with_statistic_lean(count: np.ndarray, total: np.ndarray,
                         sumsq: np.ndarray, name: str, values: np.ndarray
                         ) -> tuple[tuple[np.ndarray, np.ndarray, np.ndarray],
                                    dict[str, np.ndarray]]:
    """``with_statistic_arrays`` minus the dead preamble.

    The plain helper always derives both mean and std before branching;
    each branch consumes at most one of them. Skipping the unused
    derivation removes several full passes (including a sqrt and the
    var chain) without touching any operation whose result is kept, so
    the outputs stay bitwise-identical.

    Returns ``((count, total, sumsq), derived)`` where ``derived`` maps
    the composite statistics this branch happened to evaluate on its
    *input* state (``mean``/``var``/``std``) to the arrays it computed.
    :func:`rank1_sweep` reuses them for the observed-statistic pass when
    the input state was still the pristine child state — same function,
    same inputs, so the reuse is bitwise-free.
    """
    if name == "count":
        mean = mean_array(count, total)
        var = var_array(count, total, sumsq)
        std = np.sqrt(var)
        return (from_stats_arrays(np.maximum(values, 0.0), mean, std),
                {"mean": mean, "var": var, "std": std})
    if name == "mean":
        var = var_array(count, total, sumsq)
        std = np.sqrt(var)
        return (from_stats_arrays(count, values, std),
                {"var": var, "std": std})
    if name == "sum":
        var = var_array(count, total, sumsq)
        std = np.sqrt(var)
        new_mean = np.divide(values, count, out=np.zeros_like(total),
                             where=count != 0)
        return (from_stats_arrays(count, new_mean, std),
                {"var": var, "std": std})
    if name == "std":
        mean = mean_array(count, total)
        return (from_stats_arrays(count, mean, np.maximum(values, 0.0)),
                {"mean": mean})
    if name == "var":
        mean = mean_array(count, total)
        return (from_stats_arrays(count, mean,
                                  np.sqrt(np.maximum(values, 0.0))),
                {"mean": mean})
    raise AggregateError(f"unknown statistic {name!r}")


def rank1_sweep(count: np.ndarray, total: np.ndarray, sumsq: np.ndarray,
                parent_count: float, parent_total: float,
                parent_sumsq: float, statistics: Sequence[str],
                values: np.ndarray, valid: np.ndarray, aggregate: str,
                observed_stats: Sequence[str]
                ) -> tuple[np.ndarray, np.ndarray]:
    """Fused eq.-3 sweep (no guard: applicable at every size)."""
    r_count, r_total, r_sumsq = count, total, sumsq
    pristine: dict[str, np.ndarray] = {"count": count, "sum": total}
    for j, stat in enumerate(statistics):
        ok = valid[:, j]
        if not ok.any():
            continue
        on_pristine = (r_count is count and r_total is total
                       and r_sumsq is sumsq)
        (nc, nt, nq), derived = _with_statistic_lean(
            r_count, r_total, r_sumsq, stat, values[:, j])
        if on_pristine:
            # Derived on the untouched child state: cacheable for the
            # observed-statistic pass below (identical inputs through
            # the identical helpers give bitwise-identical arrays).
            pristine.update(derived)
        if ok.all():
            # where(all-True, new, old) is new, elementwise and bitwise;
            # skip the three full-array merge copies.
            r_count, r_total, r_sumsq = nc, nt, nq
        else:
            r_count = np.where(ok, nc, r_count)
            r_total = np.where(ok, nt, r_total)
            r_sumsq = np.where(ok, nq, r_sumsq)

    # (parent − child) + repaired, with the second add in place: one
    # fresh array per statistic instead of two, identical op order.
    p_count = parent_count - count
    p_count += r_count
    p_total = parent_total - total
    p_total += r_total
    p_sumsq = parent_sumsq - sumsq
    p_sumsq += r_sumsq
    repaired_values = evaluate_composite_arrays(aggregate, p_count,
                                                p_total, p_sumsq)

    sizes = np.zeros(len(count))
    for j, stat in enumerate(statistics):
        ok = valid[:, j]
        if stat not in observed_stats:
            observed = 0.0
        elif stat in pristine:
            observed = pristine[stat]
        else:
            observed = evaluate_composite_arrays(stat, count, total, sumsq)
        diff = np.abs(values[:, j] - observed)
        if ok.all():
            sizes += diff
        else:
            sizes = np.where(ok, sizes + diff, sizes)
    return repaired_values, sizes
