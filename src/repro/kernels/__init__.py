"""Registry-dispatched fused-kernel tier (ROADMAP open item 2).

Three hot loops of the factorized evaluation pipeline — the composite-key
group-by behind ``combine_codes``, the join-multiply behind
``EncodedCountMap.join`` / ``merge_join_indices``, and the eq.-3 rank-1
score sweep behind ``score_drilldown`` — dispatch through this package.
Backends:

======== ==============================================================
plain    the pre-tier NumPy code, frozen (:mod:`repro.kernels.plain`)
numpy    fused pure-NumPy fast paths (:mod:`repro.kernels.numpy_fused`)
numba    nopython loops, optional (:mod:`repro.kernels.numba_backend`)
======== ==============================================================

Selection is ``REPTILE_KERNELS`` (``auto``/``numpy``/``numba``/``plain``/
``off``) or :func:`set_backend`; ``auto`` picks numba only when it
imports, and nothing imports numba at module load. Every kernel result
is bitwise-equal across backends — a fused backend whose guard declines
returns ``None`` and the call falls through to the plain tier, counted
in :data:`KERNEL_STATS` and surfaced at ``/stats``.

Call sites bind this package as a module (``from .. import kernels``)
rather than importing names from it, which keeps the
relational ↔ kernels import cycle one-way at definition time.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..robustness.faultinject import fault_point
from . import numba_backend, numpy_fused, plain
from .dispatch import (BACKEND_NAMES, ENV_VAR, KERNEL_STATS,
                       KernelBackendError, _count, backend_name,
                       clear_quarantine, is_quarantined, kernel_stats,
                       quarantine_backend, quarantined_backends,
                       reset_kernel_stats, resolve_backend, set_backend)

__all__ = [
    "BACKEND_NAMES", "ENV_VAR", "KERNEL_STATS", "KernelBackendError",
    "backend_name", "clear_quarantine", "group_codes", "join_multiply",
    "join_probe", "kernel_stats", "quarantined_backends", "rank1_sweep",
    "reset_kernel_stats", "resolve_backend", "set_backend",
]


def _fused_module():
    """The active fused backend module, or None when tier is plain.

    A quarantined backend (one that raised mid-dispatch) reads as plain:
    the engine keeps serving on the frozen code path until an operator
    lifts the quarantine or forces the backend back with set_backend.
    """
    backend = backend_name()
    if is_quarantined(backend):
        return None
    if backend == "numba":
        return numba_backend
    if backend == "numpy":
        return numpy_fused
    return None


def _try_fused(kernel: str, args: tuple):
    """Run the fused backend for one kernel; None = use the plain tier.

    Guard declines (the fused function returning None) stay what they
    were: a counted fallback. An *exception* is different — a fused tier
    must never take a request down, so the raise is swallowed, the
    backend quarantined, and the plain tier serves this and every later
    call. ``kernel.dispatch`` is the chaos suite's injection point for
    exactly that path.
    """
    fused = _fused_module()
    if fused is None:
        return None
    backend = backend_name()
    try:
        fault_point("kernel.dispatch", kernel=kernel, backend=backend)
        return getattr(fused, kernel)(*args)
    except Exception as exc:
        quarantine_backend(backend, kernel, exc)
        return None


def group_codes(combined: np.ndarray, radix: int
                ) -> tuple[np.ndarray, np.ndarray]:
    """Group ids + sorted distinct keys for mixed-radix int64 keys."""
    result = _try_fused("group_codes", (combined, radix))
    if result is not None:
        _count("group_codes", True)
        return result
    _count("group_codes", False)
    return plain.group_codes(combined, radix)


def join_probe(combined_l: np.ndarray, combined_r: np.ndarray,
               radix: int) -> tuple[np.ndarray, np.ndarray]:
    """Equi-join probe: ``(l_idx, r_pos)`` in stable sort-merge order."""
    result = _try_fused("join_probe", (combined_l, combined_r, radix))
    if result is not None:
        _count("join_probe", True)
        return result
    _count("join_probe", False)
    return plain.join_probe(combined_l, combined_r, radix)


def join_multiply(combined_l: np.ndarray, combined_r: np.ndarray,
                  left_counts: np.ndarray, right_counts: np.ndarray,
                  radix: int
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Equi-join probe fused with the per-pair count product."""
    result = _try_fused("join_multiply", (combined_l, combined_r,
                                          left_counts, right_counts, radix))
    if result is not None:
        _count("join_multiply", True)
        return result
    _count("join_multiply", False)
    return plain.join_multiply(combined_l, combined_r, left_counts,
                               right_counts, radix)


def rank1_sweep(count: np.ndarray, total: np.ndarray, sumsq: np.ndarray,
                parent_count: float, parent_total: float,
                parent_sumsq: float, statistics: Sequence[str],
                values: np.ndarray, valid: np.ndarray, aggregate: str,
                observed_stats: Sequence[str]
                ) -> tuple[np.ndarray, np.ndarray]:
    """Eq.-3 rank-1 score sweep: ``(repaired_values, sizes)``."""
    result = _try_fused("rank1_sweep", (count, total, sumsq, parent_count,
                                        parent_total, parent_sumsq,
                                        statistics, values, valid,
                                        aggregate, observed_stats))
    if result is not None:
        _count("rank1_sweep", True)
        return result
    _count("rank1_sweep", False)
    return plain.rank1_sweep(count, total, sumsq, parent_count,
                             parent_total, parent_sumsq, statistics,
                             values, valid, aggregate, observed_stats)
