"""Backend registry and dispatch for the fused-kernel tier.

The tier has three interchangeable backends, all bitwise-equal on every
kernel (the property suite and the fig23 harness enforce it):

* ``plain`` — the pre-kernel-tier NumPy code paths, frozen verbatim.
  Every other backend's guard failure lands here, so the engine can
  never produce a result the plain tier would not.
* ``numpy`` — fused pure-NumPy fast paths (radix/counting group-by,
  scatter-probe join, workspace-reusing rank-1 sweep). The default
  production tier; requires nothing beyond NumPy.
* ``numba`` — the same three kernels as nopython loops. Optional:
  selected only when numba imports, and ``numba`` is *never* imported at
  module load — only inside :func:`resolve_backend` when the environment
  or an explicit :func:`set_backend` asks for it.

Selection: the ``REPTILE_KERNELS`` environment variable (read once, at
first dispatch) or :func:`set_backend`. Values:

* ``auto`` (default) — ``numba`` when importable, else ``numpy``;
* ``numpy`` — the fused NumPy tier (forced fallback from numba);
* ``numba`` — require numba (raise if it cannot be imported);
* ``plain`` / ``off`` — disable the fused tier entirely.

Every public kernel wrapper counts its dispatches in
:data:`KERNEL_STATS`: ``fused`` when the active backend's fast path ran,
``fallback`` when a guard (radix too wide, non-unique probe keys, …)
dropped the call to the plain tier. The serving layer surfaces the
counters at ``/stats``.
"""

from __future__ import annotations

import os
import threading
import time

#: Env var selecting the backend (read lazily on first dispatch).
ENV_VAR = "REPTILE_KERNELS"

#: Recognized backend names. "off" is an alias of "plain".
BACKEND_NAMES = ("auto", "numpy", "numba", "plain", "off")

#: Per-kernel dispatch counters (process-wide, like RANKER_STATS).
KERNEL_STATS: dict[str, dict[str, int]] = {
    "group_codes": {"fused": 0, "fallback": 0},
    "join_probe": {"fused": 0, "fallback": 0},
    "join_multiply": {"fused": 0, "fallback": 0},
    "rank1_sweep": {"fused": 0, "fallback": 0},
}

_lock = threading.Lock()
_active: str | None = None   # resolved backend name, None = not yet resolved
_requested: str | None = None  # explicit set_backend override
# A fused backend that *raised* (not a guard decline — those return None)
# is quarantined: every later dispatch skips it and runs the plain tier,
# because a backend that crashed once mid-request cannot be trusted not
# to crash the next request. Surfaced in kernel_stats()/healthz; cleared
# explicitly (operator action or set_backend).
_quarantined: dict[str, dict] = {}


class KernelBackendError(ValueError):
    """Raised for unknown backend names or an unavailable numba request."""


def _numba_available() -> bool:
    try:
        import numba  # noqa: F401  (deliberately lazy: only on request)
    except Exception:
        return False
    return True


def resolve_backend(name: str | None = None) -> str:
    """Resolve a requested name to the concrete backend that will run.

    ``None`` reads :data:`ENV_VAR` (default ``auto``). ``auto`` probes
    for numba; ``numba`` requires it. The result is one of ``plain``,
    ``numpy``, ``numba``.
    """
    if name is None:
        name = os.environ.get(ENV_VAR, "") or "auto"
    name = name.strip().lower()
    if name not in BACKEND_NAMES:
        raise KernelBackendError(
            f"unknown kernel backend {name!r} (choose from "
            f"{', '.join(BACKEND_NAMES)})")
    if name == "off":
        return "plain"
    if name == "auto":
        return "numba" if _numba_available() else "numpy"
    if name == "numba" and not _numba_available():
        raise KernelBackendError(
            "REPTILE_KERNELS=numba but numba cannot be imported; install "
            "numba or use REPTILE_KERNELS=numpy")
    return name


def backend_name() -> str:
    """The active backend, resolving it on first use."""
    global _active
    if _active is None:
        with _lock:
            if _active is None:
                _active = resolve_backend(_requested)
    return _active


def set_backend(name: str | None) -> str:
    """Force the backend for this process (``None`` = back to the env).

    Returns the resolved name. Used by the CLI ``--kernels`` flag and by
    the tests/benchmarks to pin a tier; resolution errors (e.g. numba
    requested but missing) surface immediately rather than at first
    dispatch.
    """
    global _active, _requested
    with _lock:
        resolved = resolve_backend(name)
        _requested = name
        _active = resolved
        # Forcing a backend is an operator decision: it lifts any
        # quarantine on that backend so it can be re-tried deliberately.
        _quarantined.pop(resolved, None)
    return resolved


def kernel_stats() -> dict:
    """Snapshot of the dispatch counters plus the backend name.

    ``backend`` reports the *resolved* tier only if resolution already
    happened; it never forces a numba probe just to be observed.
    """
    return {
        "backend": _active if _active is not None else "unresolved",
        "counters": {k: dict(v) for k, v in KERNEL_STATS.items()},
        "quarantined": quarantined_backends(),
    }


def quarantine_backend(backend: str, kernel: str,
                       exc: BaseException) -> dict:
    """Mark a fused backend unusable after it raised mid-dispatch."""
    info = {
        "kernel": kernel,
        "error": f"{type(exc).__name__}: {exc}",
        "at": time.time(),
    }
    with _lock:
        _quarantined[backend] = info
    return info


def is_quarantined(backend: str) -> bool:
    return backend in _quarantined


def quarantined_backends() -> dict[str, dict]:
    """Snapshot of quarantined backends and why (for /stats, /healthz)."""
    with _lock:
        return {name: dict(info) for name, info in _quarantined.items()}


def clear_quarantine(backend: str | None = None) -> None:
    """Lift quarantine for one backend (or all with ``None``)."""
    with _lock:
        if backend is None:
            _quarantined.clear()
        else:
            _quarantined.pop(backend, None)


def reset_kernel_stats() -> None:
    """Zero the dispatch counters (tests and benchmarks)."""
    for counts in KERNEL_STATS.values():
        counts["fused"] = 0
        counts["fallback"] = 0


def _count(kernel: str, fused: bool) -> None:
    KERNEL_STATS[kernel]["fused" if fused else "fallback"] += 1
