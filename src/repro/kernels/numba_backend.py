"""The optional numba backend: the three kernels as nopython loops.

Selected by ``REPTILE_KERNELS=numba`` (required) or ``auto`` (used when
importable). ``numba`` is imported only inside :func:`available` /
:func:`_build` — never at module load — so the default dependency-free
path stays numba-free end to end.

Each loop is a scalar transliteration of the plain tier's ufunc chain:
the same IEEE operations in the same per-element order (divisions guard
``count == 0`` the way the masked ``np.divide`` does, ``maximum(x, 0)``
mirrors ``np.maximum``'s NaN propagation and ``-0.0`` handling, squares
go through ``x ** 2.0`` — the same libm ``pow`` that ``np.float_power``
calls). The property suite runs every kernel against the plain tier and
the frozen oracles whenever numba is installed; CI has a dedicated
numba leg for exactly that.

Unlike the fused NumPy tier, the join kernel here is *general*: it
builds a stable counting-sort CSR of the right side and emits multi-
match pairs in the same order as the plain argsort + ``searchsorted``
merge, so it never declines on duplicate keys — only on radix budget.
"""

from __future__ import annotations

import threading
from typing import Sequence

import numpy as np

from .numpy_fused import DENSE_RADIX_MAX

#: name -> integer code for statistics/aggregates inside nopython loops.
STAT_CODES = {"count": 0, "mean": 1, "sum": 2, "std": 3, "var": 4}

_lock = threading.Lock()
_jit = None          # dict of compiled kernels once built
_import_failed = False


def available() -> bool:
    """Whether numba imports (memoized negatively, probed lazily)."""
    global _import_failed
    if _jit is not None:
        return True
    if _import_failed:
        return False
    try:
        import numba  # noqa: F401
    except Exception:
        _import_failed = True
        return False
    return True


def _build() -> dict:
    """Compile the kernels once per process (thread-safe, lazy)."""
    global _jit
    if _jit is not None:
        return _jit
    with _lock:
        if _jit is not None:
            return _jit
        import numba

        njit = numba.njit(cache=True, nogil=True)

        @njit
        def group_codes_jit(combined, radix):
            n = combined.size
            occupied = np.zeros(radix, dtype=np.uint8)
            for i in range(n):
                occupied[combined[i]] = 1
            cap = n if n < radix else radix
            lookup = np.empty(radix, dtype=np.int64)
            uniq = np.empty(cap, dtype=np.int64)
            u = 0
            for r in range(radix):
                if occupied[r] == 1:
                    lookup[r] = u
                    uniq[u] = r
                    u += 1
            gids = np.empty(n, dtype=np.int64)
            for i in range(n):
                gids[i] = lookup[combined[i]]
            return gids, uniq[:u].copy()

        @njit
        def join_csr_jit(combined_r, radix):
            # Stable counting sort of the right rows by key: `order`
            # equals np.argsort(combined_r, kind="stable") and
            # (cnt, offs) index it per key — a CSR over the key space.
            n_right = combined_r.size
            cnt = np.zeros(radix, dtype=np.int64)
            for i in range(n_right):
                cnt[combined_r[i]] += 1
            offs = np.empty(radix, dtype=np.int64)
            run = 0
            for r in range(radix):
                offs[r] = run
                run += cnt[r]
            fill = offs.copy()
            order = np.empty(n_right, dtype=np.int64)
            for i in range(n_right):
                key = combined_r[i]
                order[fill[key]] = i
                fill[key] += 1
            return cnt, offs, order

        @njit
        def join_probe_jit(combined_l, combined_r, radix):
            cnt, offs, order = join_csr_jit(combined_r, radix)
            n_left = combined_l.size
            total = 0
            for i in range(n_left):
                total += cnt[combined_l[i]]
            l_idx = np.empty(total, dtype=np.int64)
            r_pos = np.empty(total, dtype=np.int64)
            out = 0
            for i in range(n_left):
                key = combined_l[i]
                base = offs[key]
                for j in range(cnt[key]):
                    l_idx[out] = i
                    r_pos[out] = order[base + j]
                    out += 1
            return l_idx, r_pos

        @njit
        def join_multiply_jit(combined_l, combined_r, left_counts,
                              right_counts, radix):
            cnt, offs, order = join_csr_jit(combined_r, radix)
            n_left = combined_l.size
            total = 0
            for i in range(n_left):
                total += cnt[combined_l[i]]
            l_idx = np.empty(total, dtype=np.int64)
            r_pos = np.empty(total, dtype=np.int64)
            products = np.empty(total, dtype=np.float64)
            out = 0
            for i in range(n_left):
                key = combined_l[i]
                base = offs[key]
                left_count = left_counts[i]
                for j in range(cnt[key]):
                    pos = order[base + j]
                    l_idx[out] = i
                    r_pos[out] = pos
                    products[out] = left_count * right_counts[pos]
                    out += 1
            return l_idx, r_pos, products

        @njit
        def max0_jit(v):
            # np.maximum(v, 0.0): NaN propagates, -0.0 loses to +0.0.
            if v != v:
                return v
            if v > 0.0:
                return v
            return 0.0

        @njit
        def mean_jit(c, t):
            if c != 0.0:
                return t / c
            return 0.0

        @njit
        def var_jit(c, t, q):
            if c > 1.0:
                return max0_jit((q - t * t / c) / (c - 1.0))
            return 0.0

        @njit
        def from_stats_jit(c, m, s):
            t = c * m
            sq_mean = m ** 2.0
            if c > 1.0:
                q = (c - 1.0) * s ** 2.0 + c * sq_mean
            else:
                q = c * sq_mean
            return c, t, q

        @njit
        def apply_stat_jit(code, c, t, q, v):
            if code == 0:      # count
                return from_stats_jit(max0_jit(v), mean_jit(c, t),
                                      np.sqrt(var_jit(c, t, q)))
            if code == 1:      # mean
                return from_stats_jit(c, v, np.sqrt(var_jit(c, t, q)))
            if code == 2:      # sum
                if c != 0.0:
                    new_mean = v / c
                else:
                    new_mean = 0.0
                return from_stats_jit(c, new_mean,
                                      np.sqrt(var_jit(c, t, q)))
            if code == 3:      # std
                return from_stats_jit(c, mean_jit(c, t), max0_jit(v))
            # var
            return from_stats_jit(c, mean_jit(c, t),
                                  np.sqrt(max0_jit(v)))

        @njit
        def composite_jit(code, c, t, q):
            if code == 0:      # count
                return c
            if code == 2:      # sum
                return t
            if code == 1:      # mean
                return mean_jit(c, t)
            if code == 4:      # var
                return var_jit(c, t, q)
            return np.sqrt(var_jit(c, t, q))   # std

        @njit
        def rank1_sweep_jit(count, total, sumsq, parent_count,
                            parent_total, parent_sumsq, stat_codes,
                            values, valid, agg_code, observed_flags):
            n = count.size
            k = stat_codes.size
            repaired_values = np.empty(n, dtype=np.float64)
            sizes = np.zeros(n, dtype=np.float64)
            for i in range(n):
                c = count[i]
                t = total[i]
                q = sumsq[i]
                for j in range(k):
                    if valid[i, j]:
                        c, t, q = apply_stat_jit(stat_codes[j], c, t, q,
                                                 values[i, j])
                p_count = (parent_count - count[i]) + c
                p_total = (parent_total - total[i]) + t
                p_sumsq = (parent_sumsq - sumsq[i]) + q
                repaired_values[i] = composite_jit(agg_code, p_count,
                                                   p_total, p_sumsq)
                size = 0.0
                for j in range(k):
                    if valid[i, j]:
                        if observed_flags[j]:
                            observed = composite_jit(
                                stat_codes[j], count[i], total[i],
                                sumsq[i])
                        else:
                            observed = 0.0
                        size = size + abs(values[i, j] - observed)
                sizes[i] = size
            return repaired_values, sizes

        _jit = {
            "group_codes": group_codes_jit,
            "join_probe": join_probe_jit,
            "join_multiply": join_multiply_jit,
            "rank1_sweep": rank1_sweep_jit,
        }
        return _jit


def _as_i64(arr: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.int64)


def _as_f64(arr: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.float64)


def group_codes(combined: np.ndarray, radix: int
                ) -> tuple[np.ndarray, np.ndarray] | None:
    n_rows = len(combined)
    if radix > max(8 * n_rows, DENSE_RADIX_MAX) or not available():
        return None
    jit = _build()
    return jit["group_codes"](_as_i64(combined), radix)


def join_probe(combined_l: np.ndarray, combined_r: np.ndarray,
               radix: int) -> tuple[np.ndarray, np.ndarray] | None:
    if radix > DENSE_RADIX_MAX or not available():
        return None
    jit = _build()
    return jit["join_probe"](_as_i64(combined_l), _as_i64(combined_r),
                             radix)


def join_multiply(combined_l: np.ndarray, combined_r: np.ndarray,
                  left_counts: np.ndarray, right_counts: np.ndarray,
                  radix: int
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    if radix > DENSE_RADIX_MAX or not available():
        return None
    jit = _build()
    return jit["join_multiply"](_as_i64(combined_l), _as_i64(combined_r),
                                _as_f64(left_counts),
                                _as_f64(right_counts), radix)


def rank1_sweep(count: np.ndarray, total: np.ndarray, sumsq: np.ndarray,
                parent_count: float, parent_total: float,
                parent_sumsq: float, statistics: Sequence[str],
                values: np.ndarray, valid: np.ndarray, aggregate: str,
                observed_stats: Sequence[str]
                ) -> tuple[np.ndarray, np.ndarray] | None:
    if not available():
        return None
    if aggregate not in STAT_CODES \
            or any(s not in STAT_CODES for s in statistics):
        return None   # let the plain tier raise its AggregateError
    jit = _build()
    stat_codes = np.asarray([STAT_CODES[s] for s in statistics],
                            dtype=np.int64)
    observed_flags = np.asarray([s in observed_stats for s in statistics],
                                dtype=np.bool_)
    n, k = len(count), len(statistics)
    values2 = np.ascontiguousarray(values,
                                   dtype=np.float64).reshape(n, k)
    valid2 = np.ascontiguousarray(valid, dtype=np.bool_).reshape(n, k)
    return jit["rank1_sweep"](_as_f64(count), _as_f64(total),
                              _as_f64(sumsq), float(parent_count),
                              float(parent_total), float(parent_sumsq),
                              stat_codes, values2, valid2,
                              STAT_CODES[aggregate], observed_flags)
