"""The factorised model-training pipeline (§4.5 "Putting It All Together").

Glue between the data layer and the factorised backend: build the
feature-mapped :class:`FactorizedMatrix` for a drill-down level, align the
target statistic of the observed groups with the matrix's row order
(absent parallel groups default to 0, the worst-case setting of §5.1.4),
and train either backend. This is the code path the end-to-end runtime
experiment (Figure 10) measures.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..factorized.factorizer import Factorizer
from ..factorized.forder import AttributeOrder
from ..factorized.matrix import FactorizedMatrix, FeatureColumn
from ..relational.cube import GroupView
from .backends import DenseDesign, FactorizedDesign
from .multilevel import MultilevelFit, MultilevelModel


def feature_columns_from_view(order: AttributeOrder, view: GroupView,
                              target: str, min_groups: int = 1,
                              include_intercept: bool = True
                              ) -> list[FeatureColumn]:
    """Main-effect feature columns (§3.3.1) as factorised value maps.

    One column per attribute in the order, mapping each value to the
    median target statistic of the observed groups carrying it, plus an
    intercept column. ``min_groups`` applies the same leak guard as the
    dense featurizer (use 2 for accuracy work; 1 reproduces the raw
    featurization for performance runs).
    """
    all_stats = [s.statistic(target) for s in view.groups.values()]
    overall = statistics.median(all_stats) if all_stats else 0.0
    columns: list[FeatureColumn] = []
    if include_intercept:
        # Constant column: empty mapping + default=1.0 (O(1) memory).
        columns.append(FeatureColumn(
            order.attributes[0], "intercept", {}, default=1.0))
    for attr in order.attributes:
        pos = view.group_attrs.index(attr)
        per_value: dict = {}
        for key, state in view.groups.items():
            per_value.setdefault(key[pos], []).append(state.statistic(target))
        mapping = {}
        for v in order.ordered_domain(attr):
            vals = per_value.get(v, [])
            mapping[v] = statistics.median(vals) if len(vals) >= min_groups \
                else overall
        columns.append(FeatureColumn(attr, f"main:{attr}", mapping,
                                     default=overall))
    return columns


def y_vector(order: AttributeOrder, view: GroupView, statistic: str,
             default: float = 0.0) -> np.ndarray:
    """Target statistic aligned with the matrix's row order.

    Every matrix row is a (possibly empty) parallel group; groups absent
    from the data take ``default`` — the §5.1.4 worst case where the
    training set includes the full cross product.
    """
    positions = [view.group_attrs.index(a) for a in order.attributes]
    y = np.full(order.n_rows, float(default))
    for key, state in view.groups.items():
        matrix_key = tuple(key[p] for p in positions)
        y[order.row_index(matrix_key)] = state.statistic(statistic)
    return y


@dataclass
class TrainedLevel:
    """One drill-down level's matrix, targets, and fitted model."""

    order: AttributeOrder
    matrix: FactorizedMatrix
    y: np.ndarray
    fit: MultilevelFit
    design: object

    def predictions(self) -> np.ndarray:
        return MultilevelModel.predict(self.design, self.fit)


def _resolve_inputs(order, view, statistic, columns, y):
    cols = list(columns) if columns is not None else \
        feature_columns_from_view(order, view, statistic)
    if y is None:
        y = y_vector(order, view, statistic)
    return cols, y


def train_factorized(order: AttributeOrder, view: GroupView, statistic: str,
                     n_iterations: int = 20,
                     columns: Sequence[FeatureColumn] | None = None,
                     y: np.ndarray | None = None) -> TrainedLevel:
    """Train over the f-representation (never materialises X)."""
    cols, y = _resolve_inputs(order, view, statistic, columns, y)
    matrix = FactorizedMatrix(order, cols)
    design = FactorizedDesign(matrix)
    fit = MultilevelModel(n_iterations=n_iterations).fit(design, y)
    return TrainedLevel(order, matrix, y, fit, design)


def train_dense(order: AttributeOrder, view: GroupView, statistic: str,
                n_iterations: int = 20,
                columns: Sequence[FeatureColumn] | None = None,
                y: np.ndarray | None = None) -> TrainedLevel:
    """Vectorized dense baseline: materialise X, train with batched numpy.

    Stronger than the paper's Matlab baseline (see :func:`train_matlab`);
    reported as an extra ablation point.
    """
    cols, y = _resolve_inputs(order, view, statistic, columns, y)
    matrix = FactorizedMatrix(order, cols)
    x = matrix.materialize()
    sizes = Factorizer(order).cluster_sizes().astype(int)
    design = DenseDesign(x, sizes)
    fit = MultilevelModel(n_iterations=n_iterations).fit(design, y)
    return TrainedLevel(order, matrix, y, fit, design)


def train_matlab(order: AttributeOrder, view: GroupView, statistic: str,
                 n_iterations: int = 20,
                 columns: Sequence[FeatureColumn] | None = None,
                 y: np.ndarray | None = None) -> TrainedLevel:
    """The paper's Matlab/Lapack baseline (§5.1.4): materialised matrix,
    interpreted per-cluster EM loop."""
    from .matlab_style import MatlabStyleEM
    cols, y = _resolve_inputs(order, view, statistic, columns, y)
    matrix = FactorizedMatrix(order, cols)
    x = matrix.materialize()
    sizes = Factorizer(order).cluster_sizes().astype(int)
    fit = MatlabStyleEM(n_iterations=n_iterations).fit(x, y, sizes)
    design = DenseDesign(x, sizes)
    return TrainedLevel(order, matrix, y, fit, design)
