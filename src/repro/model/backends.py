"""Model-training backends: dense ("Matlab/Lapack") and factorized.

The EM algorithm of Appendix D only touches the data through six matrix
products — ``XᵀX``, ``Xᵀv``, ``Xβ`` and their per-cluster counterparts
``Z_iᵀZ_i``, ``Z_iᵀv_i``, ``Z_i·b_i`` — plus per-cluster squared norms.
A :class:`Design` bundles exactly those operations, so one EM implementation
trains over either backend:

* :class:`DenseDesign` materialises X (numpy = LAPACK, the paper's
  Matlab/Lapack baseline);
* :class:`FactorizedDesign` delegates to the factorised operators of
  :mod:`repro.factorized` and never materialises X.

Both also expose the per-cluster sufficient statistics needed for the
marginal log-likelihood (model selection, Appendix K).
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from ..factorized.cluster_ops import ClusterOps
from ..factorized.matrix import FactorizedMatrix


class Design(Protocol):
    """The sufficient-statistics interface EM trains against."""

    @property
    def n(self) -> int: ...
    @property
    def m(self) -> int: ...
    @property
    def r(self) -> int: ...
    @property
    def n_clusters(self) -> int: ...

    def gram(self) -> np.ndarray: ...
    def xt_v(self, v: np.ndarray) -> np.ndarray: ...
    def x_beta(self, beta: np.ndarray) -> np.ndarray: ...
    def cluster_grams(self) -> np.ndarray: ...
    def cluster_zt_v(self, v: np.ndarray) -> np.ndarray: ...
    def z_b(self, b: np.ndarray) -> np.ndarray: ...
    def cluster_sizes(self) -> np.ndarray: ...
    def cluster_sq_norms(self, v: np.ndarray) -> np.ndarray: ...


class DenseDesign:
    """Materialised design matrix with contiguous clusters.

    Parameters
    ----------
    x:
        (n × m) design matrix, rows sorted so each cluster is contiguous.
    sizes:
        Rows per cluster, in row order.
    z_columns:
        Column indices forming the random-effects matrix Z (§3.3.4);
        default: all columns (Z = X, the paper's default).
    """

    def __init__(self, x: np.ndarray, sizes: Sequence[int],
                 z_columns: Sequence[int] | None = None):
        self.x = np.asarray(x, dtype=float)
        if self.x.ndim != 2:
            raise ValueError("design matrix must be 2-D")
        self.sizes = np.asarray(sizes, dtype=int)
        if self.sizes.sum() != self.x.shape[0]:
            raise ValueError(
                f"cluster sizes sum to {self.sizes.sum()}, matrix has "
                f"{self.x.shape[0]} rows")
        self.z_columns = list(range(self.x.shape[1])) if z_columns is None \
            else list(z_columns)
        self.offsets = np.zeros(len(self.sizes) + 1, dtype=int)
        np.cumsum(self.sizes, out=self.offsets[1:])
        self._z = self.x[:, self.z_columns]
        self._row_cluster = np.repeat(np.arange(len(self.sizes)), self.sizes)
        # Data-only products, cached so batched fits over one design
        # (fit_predict_many) pay for them once. The design is treated as
        # immutable after construction.
        self._gram_cache: np.ndarray | None = None
        self._cluster_gram_cache: np.ndarray | None = None

    @property
    def n(self) -> int:
        return self.x.shape[0]

    @property
    def m(self) -> int:
        return self.x.shape[1]

    @property
    def r(self) -> int:
        return len(self.z_columns)

    @property
    def n_clusters(self) -> int:
        return len(self.sizes)

    def gram(self) -> np.ndarray:
        if self._gram_cache is None:
            self._gram_cache = self.x.T @ self.x
        return self._gram_cache

    def xt_v(self, v: np.ndarray) -> np.ndarray:
        return self.x.T @ v

    def x_beta(self, beta: np.ndarray) -> np.ndarray:
        return self.x @ beta

    def cluster_grams(self) -> np.ndarray:
        if self._cluster_gram_cache is None:
            outer = np.einsum("ni,nj->nij", self._z, self._z)
            self._cluster_gram_cache = np.add.reduceat(
                outer, self.offsets[:-1], axis=0)
        return self._cluster_gram_cache

    def cluster_zt_v(self, v: np.ndarray) -> np.ndarray:
        return np.add.reduceat(self._z * np.asarray(v)[:, None],
                               self.offsets[:-1], axis=0)

    def z_b(self, b: np.ndarray) -> np.ndarray:
        return np.einsum("ni,ni->n", self._z, b[self._row_cluster])

    def cluster_sizes(self) -> np.ndarray:
        return self.sizes.astype(float)

    def cluster_sq_norms(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=float)
        return np.add.reduceat(v * v, self.offsets[:-1])


class FactorizedDesign:
    """Design over a :class:`FactorizedMatrix`; X is never materialised."""

    def __init__(self, matrix: FactorizedMatrix,
                 z_columns: Sequence[int] | None = None):
        self.matrix = matrix
        self.z_columns = list(range(matrix.n_cols)) if z_columns is None \
            else list(z_columns)
        self._cluster_ops = ClusterOps(matrix, self.z_columns)
        self.offsets = self._cluster_ops.offsets
        self._gram_cache: np.ndarray | None = None
        self._cluster_gram_cache: np.ndarray | None = None

    @property
    def n(self) -> int:
        return self.matrix.n_rows

    @property
    def m(self) -> int:
        return self.matrix.n_cols

    @property
    def r(self) -> int:
        return len(self.z_columns)

    @property
    def n_clusters(self) -> int:
        return self._cluster_ops.n_clusters

    def gram(self) -> np.ndarray:
        # The EM loop asks repeatedly; XᵀX is data-only, so cache it
        # (the "precompute XᵀX and Z_iᵀZ_i" note of Appendix D).
        if self._gram_cache is None:
            self._gram_cache = self.matrix.gram()
        return self._gram_cache

    def xt_v(self, v: np.ndarray) -> np.ndarray:
        return self.matrix.left_multiply(np.asarray(v)[None, :])[0]

    def x_beta(self, beta: np.ndarray) -> np.ndarray:
        return self.matrix.right_multiply(np.asarray(beta))

    def cluster_grams(self) -> np.ndarray:
        if self._cluster_gram_cache is None:
            self._cluster_gram_cache = self._cluster_ops.cluster_grams()
        return self._cluster_gram_cache

    def cluster_zt_v(self, v: np.ndarray) -> np.ndarray:
        return self._cluster_ops.cluster_left(v)

    def z_b(self, b: np.ndarray) -> np.ndarray:
        return self._cluster_ops.cluster_right(b)

    def cluster_sizes(self) -> np.ndarray:
        return self._cluster_ops.cluster_sizes().astype(float)

    def cluster_sq_norms(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=float)
        return np.add.reduceat(v * v, self.offsets[:-1])
