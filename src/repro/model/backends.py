"""Model-training backends: dense ("Matlab/Lapack") and factorized.

The EM algorithm of Appendix D only touches the data through six matrix
products — ``XᵀX``, ``Xᵀv``, ``Xβ`` and their per-cluster counterparts
``Z_iᵀZ_i``, ``Z_iᵀv_i``, ``Z_i·b_i`` — plus per-cluster squared norms.
A :class:`Design` bundles exactly those operations, so one EM implementation
trains over either backend:

* :class:`DenseDesign` materialises X (numpy = LAPACK, the paper's
  Matlab/Lapack baseline);
* :class:`FactorizedDesign` delegates to the factorised operators of
  :mod:`repro.factorized` and never materialises X.

Both also expose the per-cluster sufficient statistics needed for the
marginal log-likelihood (model selection, Appendix K).
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from ..factorized.cluster_ops import ClusterOps
from ..factorized.matrix import FactorizedMatrix


class Design(Protocol):
    """The sufficient-statistics interface EM trains against."""

    @property
    def n(self) -> int: ...
    @property
    def m(self) -> int: ...
    @property
    def r(self) -> int: ...
    @property
    def n_clusters(self) -> int: ...

    def gram(self) -> np.ndarray: ...
    def xt_v(self, v: np.ndarray) -> np.ndarray: ...
    def x_beta(self, beta: np.ndarray) -> np.ndarray: ...
    def cluster_grams(self) -> np.ndarray: ...
    def cluster_zt_v(self, v: np.ndarray) -> np.ndarray: ...
    def z_b(self, b: np.ndarray) -> np.ndarray: ...
    def cluster_sizes(self) -> np.ndarray: ...
    def cluster_sq_norms(self, v: np.ndarray) -> np.ndarray: ...


class DenseDesign:
    """Materialised design matrix with contiguous clusters.

    Parameters
    ----------
    x:
        (n × m) design matrix, rows sorted so each cluster is contiguous.
    sizes:
        Rows per cluster, in row order.
    z_columns:
        Column indices forming the random-effects matrix Z (§3.3.4);
        default: all columns (Z = X, the paper's default).
    """

    def __init__(self, x: np.ndarray, sizes: Sequence[int],
                 z_columns: Sequence[int] | None = None):
        self.x = np.asarray(x, dtype=float)
        if self.x.ndim != 2:
            raise ValueError("design matrix must be 2-D")
        self.sizes = np.asarray(sizes, dtype=int)
        if self.sizes.sum() != self.x.shape[0]:
            raise ValueError(
                f"cluster sizes sum to {self.sizes.sum()}, matrix has "
                f"{self.x.shape[0]} rows")
        self.z_columns = list(range(self.x.shape[1])) if z_columns is None \
            else list(z_columns)
        self.offsets = np.zeros(len(self.sizes) + 1, dtype=int)
        np.cumsum(self.sizes, out=self.offsets[1:])
        self._z = self.x[:, self.z_columns]
        self._row_cluster = np.repeat(np.arange(len(self.sizes)), self.sizes)
        # Data-only products, cached so batched fits over one design
        # (fit_predict_many) pay for them once. The design is treated as
        # immutable after construction.
        self._gram_cache: np.ndarray | None = None
        self._cluster_gram_cache: np.ndarray | None = None

    @property
    def n(self) -> int:
        return self.x.shape[0]

    @property
    def m(self) -> int:
        return self.x.shape[1]

    @property
    def r(self) -> int:
        return len(self.z_columns)

    @property
    def n_clusters(self) -> int:
        return len(self.sizes)

    def gram(self) -> np.ndarray:
        if self._gram_cache is None:
            self._gram_cache = self.x.T @ self.x
        return self._gram_cache

    def xt_v(self, v: np.ndarray) -> np.ndarray:
        return self.x.T @ v

    def x_beta(self, beta: np.ndarray) -> np.ndarray:
        return self.x @ beta

    def cluster_grams(self) -> np.ndarray:
        if self._cluster_gram_cache is None:
            outer = np.einsum("ni,nj->nij", self._z, self._z)
            self._cluster_gram_cache = np.add.reduceat(
                outer, self.offsets[:-1], axis=0)
        return self._cluster_gram_cache

    def cluster_zt_v(self, v: np.ndarray) -> np.ndarray:
        return np.add.reduceat(self._z * np.asarray(v)[:, None],
                               self.offsets[:-1], axis=0)

    def z_b(self, b: np.ndarray) -> np.ndarray:
        return np.einsum("ni,ni->n", self._z, b[self._row_cluster])

    def cluster_sizes(self) -> np.ndarray:
        return self.sizes.astype(float)

    def cluster_sq_norms(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=float)
        return np.add.reduceat(v * v, self.offsets[:-1])


def _cluster_gram_task(source, r, offs, lo_c, hi_c):
    """Worker: ``Z_iᵀZ_i`` blocks for clusters ``[lo_c, hi_c)``.

    ``offs`` is the global offsets slice ``offsets[lo_c:hi_c+1]``; the
    per-row outer products and the per-segment ``np.add.reduceat`` sums
    read exactly the rows (in exactly the order) the full computation
    reads for these clusters, so each block is bitwise-equal to the
    matching slice of :meth:`DenseDesign.cluster_grams`.
    """
    import os
    import time

    from ..relational.shard import shared_arrays

    start = time.perf_counter()
    arrays, release = shared_arrays(source)
    try:
        if hi_c > lo_c:
            lo, hi = int(offs[0]), int(offs[-1])
            z = arrays["z"].reshape(-1, r)[lo:hi]
            outer = np.einsum("ni,nj->nij", z, z)
            block = np.ascontiguousarray(
                np.add.reduceat(outer, np.asarray(offs[:-1]) - lo, axis=0))
        else:
            block = np.zeros((0, r, r))
    finally:
        release()
    return block, time.perf_counter() - start, os.getpid()


def sharded_cluster_grams(design: DenseDesign, sharder) -> np.ndarray:
    """The per-cluster Gram stack computed over cluster-aligned ranges.

    Each worker owns a contiguous cluster range; because every
    ``reduceat`` segment depends only on its own rows, concatenating the
    per-range blocks reproduces ``design.cluster_grams()`` bitwise.
    Callers inject the result via ``design._cluster_gram_cache``.
    """
    r = design.r
    if r == 0 or design.n_clusters == 0:
        return design.cluster_grams()
    shared = {"z": np.ascontiguousarray(design._z).ravel()}
    ranges = sharder.ranges(design.n_clusters)
    args = [(r, design.offsets[lo_c:hi_c + 1].astype(np.int64), lo_c, hi_c)
            for lo_c, hi_c in ranges]
    blocks = sharder.run_shared(_cluster_gram_task, shared, args,
                                stage="gram")
    return np.concatenate(blocks, axis=0)


def partial_design_products(x: np.ndarray, ys: Sequence[np.ndarray],
                            lo: int, hi: int
                            ) -> tuple[np.ndarray, list[np.ndarray]]:
    """Partial ``XᵀX`` and ``Xᵀy`` over the row range ``[lo, hi)``.

    One shard's contribution to the normal-equation products; see
    :func:`sum_design_products` for the summation-order caveat.
    """
    xs = x[lo:hi]
    return xs.T @ xs, [xs.T @ np.asarray(y, dtype=float)[lo:hi] for y in ys]


def sum_design_products(parts: Sequence[tuple[np.ndarray, list[np.ndarray]]]
                        ) -> tuple[np.ndarray, list[np.ndarray]]:
    """Sum partial products in ascending-range (cluster-sorted) order.

    Summation-order caveat: a single BLAS ``X.T @ X`` over all n rows
    accumulates dot products in an implementation-chosen (blocked) order,
    so the sharded sum is *reproducible* for a fixed range decomposition
    but NOT bitwise-equal to the one-shot product — only equal to within
    floating-point reassociation (~1 ulp per partial). The recommend path
    therefore keeps its promise of bitwise equality by assembling the full
    design and computing ``design.gram()`` serially; these partial
    products serve out-of-core accumulation, where X never materialises
    in one piece, and are pinned by a dedicated reproducibility test.
    """
    if not parts:
        raise ValueError("no partial products to sum")
    xtx = parts[0][0].copy()
    xtys = [b.copy() for b in parts[0][1]]
    for block, y_blocks in parts[1:]:
        xtx += block
        for acc, b in zip(xtys, y_blocks):
            acc += b
    return xtx, xtys


def _design_product_task(source, m, n_targets, lo, hi):
    """Worker: partial ``XᵀX``/``Xᵀy`` blocks for rows ``[lo, hi)``."""
    import os
    import time

    from ..relational.shard import shared_arrays

    start = time.perf_counter()
    arrays, release = shared_arrays(source)
    try:
        x = arrays["x"].reshape(-1, m)
        ys = [arrays[f"y{j}"] for j in range(n_targets)]
        xs = x[lo:hi]
        payload = (np.ascontiguousarray(xs.T @ xs),
                   [np.ascontiguousarray(xs.T @ y[lo:hi]) for y in ys])
    finally:
        release()
    return payload, time.perf_counter() - start, os.getpid()


def sharded_design_products(design: DenseDesign, ys: Sequence[np.ndarray],
                            sharder
                            ) -> tuple[np.ndarray, list[np.ndarray]]:
    """``XᵀX`` and every ``Xᵀy`` accumulated per shard over the pool.

    Partial blocks are summed in cluster-sorted range order; see
    :func:`sum_design_products` for why the result is reproducible but
    not bitwise-equal to the serial one-shot products.
    """
    m = design.m
    shared = {"x": np.ascontiguousarray(design.x).ravel()}
    for j, y in enumerate(ys):
        shared[f"y{j}"] = np.asarray(y, dtype=float)
    ranges = sharder.ranges(design.n)
    args = [(m, len(ys), lo, hi) for lo, hi in ranges]
    parts = sharder.run_shared(_design_product_task, shared, args,
                               stage="gram")
    return sum_design_products(parts)


class FactorizedDesign:
    """Design over a :class:`FactorizedMatrix`; X is never materialised."""

    def __init__(self, matrix: FactorizedMatrix,
                 z_columns: Sequence[int] | None = None):
        self.matrix = matrix
        self.z_columns = list(range(matrix.n_cols)) if z_columns is None \
            else list(z_columns)
        self._cluster_ops = ClusterOps(matrix, self.z_columns)
        self.offsets = self._cluster_ops.offsets
        self._gram_cache: np.ndarray | None = None
        self._cluster_gram_cache: np.ndarray | None = None

    @property
    def n(self) -> int:
        return self.matrix.n_rows

    @property
    def m(self) -> int:
        return self.matrix.n_cols

    @property
    def r(self) -> int:
        return len(self.z_columns)

    @property
    def n_clusters(self) -> int:
        return self._cluster_ops.n_clusters

    def gram(self) -> np.ndarray:
        # The EM loop asks repeatedly; XᵀX is data-only, so cache it
        # (the "precompute XᵀX and Z_iᵀZ_i" note of Appendix D).
        if self._gram_cache is None:
            self._gram_cache = self.matrix.gram()
        return self._gram_cache

    def xt_v(self, v: np.ndarray) -> np.ndarray:
        return self.matrix.left_multiply(np.asarray(v)[None, :])[0]

    def x_beta(self, beta: np.ndarray) -> np.ndarray:
        return self.matrix.right_multiply(np.asarray(beta))

    def cluster_grams(self) -> np.ndarray:
        if self._cluster_gram_cache is None:
            self._cluster_gram_cache = self._cluster_ops.cluster_grams()
        return self._cluster_gram_cache

    def cluster_zt_v(self, v: np.ndarray) -> np.ndarray:
        return self._cluster_ops.cluster_left(v)

    def z_b(self, b: np.ndarray) -> np.ndarray:
        return self._cluster_ops.cluster_right(b)

    def cluster_sizes(self) -> np.ndarray:
        return self._cluster_ops.cluster_sizes().astype(float)

    def cluster_sq_norms(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=float)
        return np.add.reduceat(v * v, self.offsets[:-1])
