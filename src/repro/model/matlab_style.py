"""The "Matlab-based implementation" baseline of §5.1.4 (Figure 10).

The paper times Reptile against a Matlab implementation that "internally
uses Lapack to train over the full materialized feature matrix". That
baseline has two defining properties, reproduced here:

1. the design matrix X is fully materialised, and
2. every per-cluster quantity of the EM update (gram, projection,
   contribution to Z·b̂, the V_i inverse) is computed in an *interpreted
   per-cluster loop*, each step delegating to LAPACK (numpy) on the
   cluster's slice.

The arithmetic is identical to :class:`repro.model.multilevel.MultilevelModel`
(tests assert equal fits); only the execution strategy differs, which is
exactly the axis Figure 10 measures.
"""

from __future__ import annotations

import numpy as np

from .linear import solve_spd
from .multilevel import MIN_SIGMA2, MultilevelFit, _stable_inverse


class MatlabStyleEM:
    """EM over a materialised matrix with per-cluster interpreted loops."""

    def __init__(self, n_iterations: int = 20, ridge: float = 1e-8):
        self.n_iterations = n_iterations
        self.ridge = ridge

    def fit(self, x: np.ndarray, y: np.ndarray, sizes: np.ndarray,
            z_columns: list[int] | None = None) -> MultilevelFit:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        sizes = np.asarray(sizes, dtype=int)
        n, m = x.shape
        z_columns = list(range(m)) if z_columns is None else list(z_columns)
        r = len(z_columns)
        offsets = np.zeros(len(sizes) + 1, dtype=int)
        np.cumsum(sizes, out=offsets[1:])
        big_g = len(sizes)

        # Per-cluster slices and grams (precomputable, as in Appendix D).
        z_slices = [x[offsets[i]:offsets[i + 1]][:, z_columns]
                    for i in range(big_g)]
        grams = [zi.T @ zi for zi in z_slices]
        gram_x = x.T @ x

        beta = solve_spd(gram_x, x.T @ y, self.ridge)
        residual = y - x @ beta
        sigma2 = max(float(residual @ residual) / max(n, 1), MIN_SIGMA2)
        cov = np.eye(r) * sigma2
        b = np.zeros((big_g, r))
        history: list[float] = []

        for _ in range(self.n_iterations):
            cov_inv = _stable_inverse(cov)
            resid_fixed = y - x @ beta
            zb = np.empty(n)
            ebbt_sum = np.zeros((r, r))
            trace_term = 0.0
            # The interpreted per-cluster loop that defines this baseline.
            for i in range(big_g):
                lo, hi = offsets[i], offsets[i + 1]
                v_i = np.linalg.inv(grams[i] / sigma2 + cov_inv)
                mu_i = v_i @ (z_slices[i].T @ resid_fixed[lo:hi]) / sigma2
                b[i] = mu_i
                ebbt_i = v_i + np.outer(mu_i, mu_i)
                ebbt_sum += ebbt_i
                trace_term += float(np.trace(grams[i] @ ebbt_i))
                zb[lo:hi] = z_slices[i] @ mu_i
            beta = solve_spd(gram_x, x.T @ (y - zb), self.ridge)
            cov = ebbt_sum / big_g
            cov = 0.5 * (cov + cov.T)
            resid = y - x @ beta
            sigma2 = (float(resid @ resid) + trace_term
                      - 2.0 * float(resid @ zb)) / max(n, 1)
            sigma2 = max(sigma2, MIN_SIGMA2)
            history.append(sigma2)

        return MultilevelFit(beta=beta, cov=cov, sigma2=sigma2, b=b,
                             n=n, m=m, r=r, history=history)
