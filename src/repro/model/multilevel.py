"""Multi-level (mixed-effects) linear model trained with EM (Appendix D).

The model of §3.2, for clusters i = 1..G:

    y_i = X_i·β + Z_i·b_i + ε_i,   b_i ~ N(0, Σ),   ε_i ~ N(0, σ²·I)

EM alternates the expectation of the cluster effects (eqs. 8–11):

    V_i = (Z_iᵀZ_i/σ̂² + Σ̂⁻¹)⁻¹
    μ_i = V_i·Z_iᵀ·(y_i − X_i·β̂)/σ̂²          E[b_i] = μ_i
    E[b_i·b_iᵀ] = V_i + μ_i·μ_iᵀ

with the maximisation of β, Σ, σ² (eqs. 12–14):

    β̂  = (XᵀX)⁻¹·Xᵀ·(y − Z·b̂)
    Σ̂  = (1/G)·Σ_i E[b_i·b_iᵀ]
    σ̂² = (1/n)·( ‖y−Xβ̂‖² + Σ_i Tr(Z_iᵀZ_i·E[b_i b_iᵀ]) − 2(y−Xβ̂)ᵀ(Z·b̂) )

Everything reaches the data through the :class:`Design` protocol, so the
same code trains over the dense (Matlab/Lapack-style) and the factorised
backend; ``Z·b̂`` uses the vertical-concatenation trick and β̂ uses the
multiplication-order optimization, both from Appendix D.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .backends import Design
from .linear import solve_spd

#: Floors keeping the EM iterations numerically sane on degenerate data.
MIN_SIGMA2 = 1e-10
MIN_COV_EIGENVALUE = 1e-10


@dataclass
class MultilevelFit:
    """Fitted multi-level model parameters and per-cluster BLUPs."""

    beta: np.ndarray          # fixed effects (m,)
    cov: np.ndarray           # random-effect covariance Σ (r, r)
    sigma2: float             # noise variance σ²
    b: np.ndarray             # per-cluster effects b̂ (G, r)
    n: int
    m: int
    r: int
    history: list[float] = field(default_factory=list)  # σ² per iteration

    @property
    def n_parameters(self) -> int:
        """β, the free entries of Σ, and σ² (Appendix K's AIC count)."""
        return self.m + self.r * (self.r + 1) // 2 + 1


class MultilevelModel:
    """EM trainer for the multi-level linear model.

    Parameters
    ----------
    n_iterations:
        EM iterations (the paper's experiments use 20).
    ridge:
        Stabilisation for the inner linear solves.
    """

    def __init__(self, n_iterations: int = 20, ridge: float = 1e-8):
        self.n_iterations = n_iterations
        self.ridge = ridge

    def fit(self, design: Design, y: np.ndarray,
            precomputed: tuple[np.ndarray, np.ndarray] | None = None
            ) -> MultilevelFit:
        y = np.asarray(y, dtype=float)
        if y.shape != (design.n,):
            raise ValueError(f"y has shape {y.shape}, expected ({design.n},)")
        n, m, r, big_g = design.n, design.m, design.r, design.n_clusters

        # Precomputable data-only quantities (Appendix D "Bottleneck");
        # fit_predict_many passes them in once for a batch of targets.
        if precomputed is not None:
            gram, cluster_grams = precomputed
        else:
            gram = design.gram()
            cluster_grams = design.cluster_grams()  # (G, r, r)

        # Initialise from OLS: β from the fixed part, Σ and σ² from its
        # residual spread.
        beta = solve_spd(gram, design.xt_v(y), self.ridge)
        residual = y - design.x_beta(beta)
        sigma2 = max(float(residual @ residual) / max(n, 1), MIN_SIGMA2)
        cov = np.eye(r) * sigma2
        b = np.zeros((big_g, r))
        history: list[float] = []

        for _ in range(self.n_iterations):
            # ---- E step (eqs. 8–11), batched over clusters ----
            cov_inv = _stable_inverse(cov)
            v = np.linalg.inv(cluster_grams / sigma2 + cov_inv[None, :, :])
            resid_fixed = y - design.x_beta(beta)
            zt_r = design.cluster_zt_v(resid_fixed)          # (G, r)
            mu = np.einsum("gij,gj->gi", v, zt_r) / sigma2   # (G, r)
            b = mu
            ebbt = v + np.einsum("gi,gj->gij", mu, mu)       # (G, r, r)

            # ---- M step (eqs. 12–14) ----
            zb = design.z_b(b)
            beta = solve_spd(gram, design.xt_v(y - zb), self.ridge)
            cov = ebbt.mean(axis=0)
            cov = 0.5 * (cov + cov.T)  # keep symmetric under roundoff
            resid = y - design.x_beta(beta)
            trace_term = float(np.einsum("gij,gij->", cluster_grams, ebbt))
            sigma2 = (float(resid @ resid) + trace_term
                      - 2.0 * float(resid @ zb)) / max(n, 1)
            sigma2 = max(sigma2, MIN_SIGMA2)
            history.append(sigma2)

        return MultilevelFit(beta=beta, cov=cov, sigma2=sigma2, b=b,
                             n=n, m=m, r=r, history=history)

    def fit_predict(self, design: Design, y: np.ndarray) -> np.ndarray:
        """Fitted per-row expectations ŷ = X·β̂ + Z·b̂ (the repair values)."""
        fit = self.fit(design, y)
        return self.predict(design, fit)

    def fit_predict_many(self, design: Design,
                         ys: "list[np.ndarray]") -> list[np.ndarray]:
        """Fitted expectations for many targets over one shared design.

        The Appendix D precomputables — ``XᵀX`` and the per-cluster
        ``Z_iᵀZ_i`` stack — depend only on the data, so one computation
        serves every target; the EM iterations themselves run per target
        (their state depends on y), keeping each output bitwise-equal to
        ``fit_predict(design, y)``.
        """
        precomputed = (design.gram(), design.cluster_grams())
        out = []
        for y in ys:
            fit = self.fit(design, y, precomputed=precomputed)
            out.append(self.predict(design, fit))
        return out

    @staticmethod
    def predict(design: Design, fit: MultilevelFit) -> np.ndarray:
        """ŷ = X·β̂ + Z·b̂ with the cluster BLUPs."""
        return design.x_beta(fit.beta) + design.z_b(fit.b)

    @staticmethod
    def log_likelihood(design: Design, fit: MultilevelFit, y: np.ndarray
                       ) -> float:
        """Marginal Gaussian log-likelihood of the fitted model.

        Per cluster, ``y_i ~ N(X_i·β, Z_i·Σ·Z_iᵀ + σ²I)``; determinant and
        quadratic form are evaluated through the Woodbury identity using
        only the per-cluster sufficient statistics, so this works on both
        backends without materialising Z_i.
        """
        y = np.asarray(y, dtype=float)
        resid = y - design.x_beta(fit.beta)
        sizes = design.cluster_sizes()
        grams = design.cluster_grams()                       # (G, r, r)
        zt_r = design.cluster_zt_v(resid)                    # (G, r)
        sq = design.cluster_sq_norms(resid)                  # (G,)
        sigma2 = max(fit.sigma2, MIN_SIGMA2)
        r = fit.r
        eye_r = np.eye(r)

        # log det(σ²I + Z Σ Zᵀ) = n_i·log σ² + log det(I_r + Σ·G_i/σ²)
        inner = eye_r[None, :, :] + fit.cov @ grams / sigma2
        sign, logdet_inner = np.linalg.slogdet(inner)
        if np.any(sign <= 0):
            # Σ nearly singular — fall back to a symmetrised stable form.
            inner = eye_r[None, :, :] + \
                (grams @ fit.cov + np.transpose(grams @ fit.cov, (0, 2, 1))) / (2 * sigma2)
            sign, logdet_inner = np.linalg.slogdet(inner)
            logdet_inner = np.where(sign > 0, logdet_inner, 0.0)
        logdets = sizes * math.log(sigma2) + logdet_inner

        # Quadratic form via Woodbury:
        #   rᵀC⁻¹r = (‖r‖² − wᵀ(σ²Σ⁻¹ + G_i)⁻¹w)/σ²  with w = Z_iᵀr.
        middle = sigma2 * _stable_inverse(fit.cov)[None, :, :] + grams
        solved = np.linalg.solve(middle, zt_r[:, :, None])[:, :, 0]
        quad = (sq - np.einsum("gi,gi->g", zt_r, solved)) / sigma2

        n = design.n
        return float(-0.5 * (n * math.log(2 * math.pi)
                             + logdets.sum() + quad.sum()))

    @classmethod
    def aic(cls, design: Design, fit: MultilevelFit, y: np.ndarray) -> float:
        """AIC = 2k − 2·lnL̂ (Appendix K, Figure 16)."""
        return 2.0 * fit.n_parameters - 2.0 * cls.log_likelihood(design, fit, y)


def _stable_inverse(a: np.ndarray) -> np.ndarray:
    """Inverse of a symmetric PSD matrix with an eigenvalue floor."""
    a = 0.5 * (a + a.T)
    try:
        values, vectors = np.linalg.eigh(a)
    except np.linalg.LinAlgError:
        return np.linalg.pinv(a)
    values = np.maximum(values, MIN_COV_EIGENVALUE)
    return (vectors / values) @ vectors.T
