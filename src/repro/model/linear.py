"""Ordinary least squares — the non-hierarchical baseline model (§3.2).

The "Naive Approach" of §3.2: ``y = X·β + ε``. Used standalone in the
model-quality comparison of Appendix K (Figure 16) and as the
initialisation of the multi-level EM. A small ridge keeps the normal
equations solvable when main-effect features are collinear.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .backends import Design

#: Ridge added to normal equations for numerical stability.
DEFAULT_RIDGE = 1e-8


@dataclass
class LinearFit:
    """A fitted linear model with Gaussian-noise likelihood."""

    beta: np.ndarray
    sigma2: float
    n: int
    m: int

    @property
    def n_parameters(self) -> int:
        """β plus the noise variance."""
        return self.m + 1

    def log_likelihood(self, residual_ss: float | None = None) -> float:
        """Gaussian log-likelihood at the MLE (requires stored σ²)."""
        sigma2 = max(self.sigma2, 1e-300)
        return -0.5 * self.n * (math.log(2 * math.pi * sigma2) + 1.0)

    def aic(self) -> float:
        """Akaike information criterion, ``2k − 2·lnL̂`` (Appendix K)."""
        return 2.0 * self.n_parameters - 2.0 * self.log_likelihood()


class LinearModel:
    """OLS over any :class:`Design` backend.

    Parameters
    ----------
    ridge:
        Tikhonov stabilisation added to XᵀX before solving.
    """

    def __init__(self, ridge: float = DEFAULT_RIDGE):
        self.ridge = ridge

    def fit(self, design: Design, y: np.ndarray,
            gram: np.ndarray | None = None) -> LinearFit:
        y = np.asarray(y, dtype=float)
        if y.shape != (design.n,):
            raise ValueError(f"y has shape {y.shape}, expected ({design.n},)")
        if gram is None:
            gram = design.gram()
        rhs = design.xt_v(y)
        beta = solve_spd(gram, rhs, self.ridge)
        residual = y - design.x_beta(beta)
        sigma2 = float(residual @ residual) / design.n if design.n else 0.0
        return LinearFit(beta=beta, sigma2=sigma2, n=design.n, m=design.m)

    def fit_predict(self, design: Design, y: np.ndarray) -> np.ndarray:
        """Fitted values ŷ = X·β̂."""
        fit = self.fit(design, y)
        return design.x_beta(fit.beta)

    def fit_predict_many(self, design: Design,
                         ys: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Fitted values for many targets over one shared design.

        ``XᵀX`` is data-only, so it is computed once and reused for every
        target; each solve then runs per target (a batched multi-RHS
        ``solve`` is *not* bitwise-identical to per-column solves, and the
        recommend path promises exact equality with the per-statistic
        reference), making each output bitwise-equal to
        ``fit_predict(design, y)``.
        """
        gram = design.gram()
        out = []
        for y in ys:
            fit = self.fit(design, y, gram=gram)
            out.append(design.x_beta(fit.beta))
        return out


def solve_spd(a: np.ndarray, b: np.ndarray, ridge: float = DEFAULT_RIDGE
              ) -> np.ndarray:
    """Solve a symmetric positive (semi-)definite system robustly.

    Adds ``ridge·trace/m`` to the diagonal; falls back to the
    pseudo-inverse if the system is still singular.
    """
    a = np.asarray(a, dtype=float)
    m = a.shape[0]
    scale = np.trace(a) / m if m else 1.0
    jitter = ridge * max(scale, 1.0)
    try:
        return np.linalg.solve(a + jitter * np.eye(m), b)
    except np.linalg.LinAlgError:
        return np.linalg.pinv(a) @ b
