"""Models: feature generation, OLS, and the EM-trained multi-level model."""

from .backends import DenseDesign, Design, FactorizedDesign
from .features import (AuxiliaryFeature, BuiltFeature, CustomFeature,
                       FeatureError, FeaturePlan, FeatureSet, FeatureSpec,
                       LagFeature, MainEffectFeature, ViewDesign,
                       build_view_design, build_view_designs)
from .linear import LinearFit, LinearModel, solve_spd
from .multilevel import MultilevelFit, MultilevelModel
from .selection import (ModelScore, SUBSTANTIAL_DELTA, compare_models,
                        delta_aic, substantially_better)

__all__ = [
    "DenseDesign", "Design", "FactorizedDesign", "AuxiliaryFeature",
    "BuiltFeature", "CustomFeature", "FeatureError", "FeaturePlan",
    "FeatureSet", "FeatureSpec", "LagFeature", "MainEffectFeature",
    "ViewDesign", "build_view_design", "build_view_designs", "LinearFit",
    "LinearModel",
    "solve_spd", "MultilevelFit", "MultilevelModel", "ModelScore",
    "SUBSTANTIAL_DELTA", "compare_models", "delta_aic",
    "substantially_better",
]
