"""Model-quality comparison via AIC (Appendix K, Figure 16).

Compares the four model variants of the paper — Linear, Linear-f
(+auxiliary features), Multi-level, Multi-level-f — on a view, reporting
ΔAIC against the best model. As in the paper, a ΔAIC above 10 marks a
model as substantially worse [7].
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..relational.cube import GroupView
from .features import FeaturePlan, FeatureSpec, build_view_design
from .linear import LinearModel
from .multilevel import MultilevelModel

#: Burnham & Anderson rule of thumb: ΔAIC > 10 ⇒ essentially no support.
SUBSTANTIAL_DELTA = 10.0


@dataclass
class ModelScore:
    """AIC of one model variant on one dataset."""

    name: str
    aic: float
    log_likelihood: float
    n_parameters: int

    def delta(self, best_aic: float) -> float:
        return self.aic - best_aic


def _linear_aic(view: GroupView, target: str, plan: FeaturePlan,
                cluster_attrs: Sequence[str]) -> ModelScore:
    vd = build_view_design(view, target, plan, cluster_attrs)
    fit = LinearModel().fit(vd.design, vd.y)
    return ModelScore("linear", fit.aic(), fit.log_likelihood(),
                      fit.n_parameters)


def _multilevel_aic(view: GroupView, target: str, plan: FeaturePlan,
                    cluster_attrs: Sequence[str],
                    n_iterations: int = 20) -> ModelScore:
    vd = build_view_design(view, target, plan, cluster_attrs)
    model = MultilevelModel(n_iterations=n_iterations)
    fit = model.fit(vd.design, vd.y)
    ll = model.log_likelihood(vd.design, fit, vd.y)
    return ModelScore("multilevel", 2.0 * fit.n_parameters - 2.0 * ll, ll,
                      fit.n_parameters)


def compare_models(view: GroupView, target: str,
                   cluster_attrs: Sequence[str],
                   auxiliary_specs: Sequence[FeatureSpec] = (),
                   n_iterations: int = 20) -> dict[str, ModelScore]:
    """Figure 16's four-way comparison on one dataset.

    Returns scores keyed ``linear``, ``linear-f``, ``multilevel``,
    ``multilevel-f`` (the ``-f`` variants add ``auxiliary_specs``).
    """
    default = FeaturePlan()
    with_aux = FeaturePlan(extra_specs=list(auxiliary_specs))
    scores = {
        "linear": _linear_aic(view, target, default, cluster_attrs),
        "linear-f": _linear_aic(view, target, with_aux, cluster_attrs),
        "multilevel": _multilevel_aic(view, target, default, cluster_attrs,
                                      n_iterations),
        "multilevel-f": _multilevel_aic(view, target, with_aux, cluster_attrs,
                                        n_iterations),
    }
    for key, variant in (("linear", "linear"), ("linear-f", "linear-f"),
                         ("multilevel", "multilevel"),
                         ("multilevel-f", "multilevel-f")):
        scores[key] = ModelScore(variant, scores[key].aic,
                                 scores[key].log_likelihood,
                                 scores[key].n_parameters)
    return scores


def delta_aic(scores: dict[str, ModelScore]) -> dict[str, float]:
    """ΔAIC_i = AIC_i − AIC_min for every variant (Figure 16's y-axis)."""
    best = min(s.aic for s in scores.values())
    return {name: s.aic - best for name, s in scores.items()}


def substantially_better(scores: dict[str, ModelScore],
                         a: str, b: str) -> bool:
    """Whether model ``a`` beats ``b`` by more than the ΔAIC>10 rule."""
    if math.isnan(scores[a].aic) or math.isnan(scores[b].aic):
        return False
    return scores[b].aic - scores[a].aic > SUBSTANTIAL_DELTA
