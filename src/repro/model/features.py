"""Feature generation for the repair model (§3.3, Appendices B and H).

Reptile featurizes drill-down *groups*, not raw records. Every feature is
a mapping from attribute value(s) to a float:

* **Main effects** (§3.3.1) — each categorical attribute value is replaced
  by the median target statistic of the groups carrying that value (the
  anomaly-detection featurization of [28, 50]); numeric features are
  centered and normalized.
* **Auxiliary features** (§3.3.2) — measures of a registered auxiliary
  dataset, keyed on its join attributes, included once the drill-down
  level contains all join attributes.
* **Custom features** (§3.3.3) — user-supplied ``q(A, Y) → {value: float}``
  functions; :class:`LagFeature` implements the paper's "previous year's
  severity" example.
* **Random effects** (§3.3.4) — ``FeaturePlan(random_effects=[...])``
  restricts which features enter Z; default Z = X.

:func:`build_view_design` turns a :class:`GroupView` into a cluster-sorted
dense design (the accuracy-experiment path); the same
:class:`BuiltFeature` mappings convert to factorised
:class:`~repro.factorized.matrix.FeatureColumn` objects for the
performance path.
"""

from __future__ import annotations

import abc
import statistics
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..relational.cube import GroupView
from ..relational.dataset import AuxiliaryDataset
from .backends import DenseDesign


class FeatureError(ValueError):
    """Raised for inapplicable or malformed feature specifications."""


@dataclass
class BuiltFeature:
    """A realised feature: value(s) of ``attributes`` → float."""

    name: str
    attributes: tuple[str, ...]
    mapping: dict
    default: float = 0.0

    def key_of(self, view_attrs: Sequence[str], group_key: tuple):
        positions = [view_attrs.index(a) for a in self.attributes]
        if len(positions) == 1:
            return group_key[positions[0]]
        return tuple(group_key[p] for p in positions)

    def value_for(self, view_attrs: Sequence[str], group_key: tuple) -> float:
        return float(self.mapping.get(self.key_of(view_attrs, group_key),
                                      self.default))

    def standardized(self, keys: list) -> "BuiltFeature":
        """Centered/normalized copy, statistics taken over ``keys``."""
        values = np.asarray([self.mapping.get(k, self.default) for k in keys],
                            dtype=float)
        mean = float(values.mean()) if len(values) else 0.0
        std = float(values.std()) if len(values) else 1.0
        if std < 1e-12:
            std = 1.0
        mapping = {k: (v - mean) / std for k, v in self.mapping.items()}
        return BuiltFeature(self.name, self.attributes, mapping,
                            default=(self.default - mean) / std)


class FeatureSpec(abc.ABC):
    """Declarative feature; :meth:`build` realises it against a view."""

    @abc.abstractmethod
    def build(self, view: GroupView, target: str) -> BuiltFeature:
        """Realise the feature for ``view`` predicting statistic ``target``."""

    def applicable(self, view: GroupView) -> bool:
        """Whether the view's group-by level supports this feature."""
        return True


@dataclass
class MainEffectFeature(FeatureSpec):
    """Median target statistic per attribute value (§3.3.1).

    A value backed by fewer than ``min_groups`` groups maps to the overall
    median instead: its per-value median would just echo the group's own
    statistic back as a feature (a target leak that makes every prediction
    equal its observation and defeats the repair).
    """

    attribute: str
    min_groups: int = 2

    def applicable(self, view: GroupView) -> bool:
        return self.attribute in view.group_attrs

    def build(self, view: GroupView, target: str) -> BuiltFeature:
        if not self.applicable(view):
            raise FeatureError(
                f"attribute {self.attribute!r} not in view "
                f"{view.group_attrs}")
        pos = view.group_attrs.index(self.attribute)
        per_value: dict = {}
        for key, state in view.groups.items():
            per_value.setdefault(key[pos], []).append(state.statistic(target))
        overall = statistics.median(
            [s.statistic(target) for s in view.groups.values()]) \
            if view.groups else 0.0
        mapping = {v: statistics.median(vals) if len(vals) >= self.min_groups
                   else overall
                   for v, vals in per_value.items()}
        return BuiltFeature(f"main:{self.attribute}", (self.attribute,),
                            mapping, default=overall)


@dataclass
class AuxiliaryFeature(FeatureSpec):
    """One measure of an auxiliary dataset, keyed on its join attrs (§3.3.2)."""

    auxiliary: AuxiliaryDataset
    measure: str

    def applicable(self, view: GroupView) -> bool:
        return set(self.auxiliary.join_on) <= set(view.group_attrs)

    def build(self, view: GroupView, target: str) -> BuiltFeature:
        if self.measure not in self.auxiliary.measures:
            raise FeatureError(
                f"{self.measure!r} is not a measure of auxiliary dataset "
                f"{self.auxiliary.name!r}")
        lookup = self.auxiliary.lookup()
        single = len(self.auxiliary.join_on) == 1
        mapping = {}
        values = []
        for key, measures in lookup.items():
            mkey = key[0] if single else key
            mapping[mkey] = measures[self.measure]
            values.append(measures[self.measure])
        default = statistics.median(values) if values else 0.0
        return BuiltFeature(f"aux:{self.auxiliary.name}.{self.measure}",
                            tuple(self.auxiliary.join_on), mapping,
                            default=default)


@dataclass
class LagFeature(FeatureSpec):
    """Target statistic of the group at ``value − lag`` (§3.3.3 example).

    The attribute's values must support subtraction (years, day indexes).
    Groups whose lagged value is absent fall back to the overall median.
    """

    attribute: str
    lag: int = 1

    def applicable(self, view: GroupView) -> bool:
        return self.attribute in view.group_attrs

    def build(self, view: GroupView, target: str) -> BuiltFeature:
        pos = view.group_attrs.index(self.attribute)
        per_value: dict = {}
        for key, state in view.groups.items():
            per_value.setdefault(key[pos], []).append(state.statistic(target))
        medians = {v: statistics.median(vals) for v, vals in per_value.items()}
        overall = statistics.median(
            [s.statistic(target) for s in view.groups.values()]) \
            if view.groups else 0.0
        mapping = {}
        for v in medians:
            try:
                lagged = v - self.lag
            except TypeError:
                raise FeatureError(
                    f"lag feature needs numeric attribute, got {v!r}") from None
            mapping[v] = medians.get(lagged, overall)
        return BuiltFeature(f"lag{self.lag}:{self.attribute}",
                            (self.attribute,), mapping, default=overall)


@dataclass
class CustomFeature(FeatureSpec):
    """User-provided ``q(A, Y) → {value: feature}`` (§3.3.3).

    ``builder(view, target)`` returns the value → float mapping.
    """

    name: str
    attributes: tuple[str, ...]
    builder: Callable[[GroupView, str], Mapping]
    default: float = 0.0

    def applicable(self, view: GroupView) -> bool:
        return set(self.attributes) <= set(view.group_attrs)

    def build(self, view: GroupView, target: str) -> BuiltFeature:
        mapping = dict(self.builder(view, target))
        return BuiltFeature(f"custom:{self.name}", tuple(self.attributes),
                            mapping, default=self.default)


@dataclass
class FeatureSet:
    """Realised features plus the intercept, ready to become a matrix."""

    view_attrs: tuple[str, ...]
    features: list[BuiltFeature]
    intercept: bool = True
    random_effects: tuple[str, ...] | None = None

    @property
    def column_names(self) -> list[str]:
        names = ["intercept"] if self.intercept else []
        return names + [f.name for f in self.features]

    @property
    def n_columns(self) -> int:
        return len(self.features) + (1 if self.intercept else 0)

    def design_rows(self, keys: Sequence[tuple]) -> np.ndarray:
        """Dense (len(keys) × m) design matrix for the given group keys."""
        n = len(keys)
        out = np.empty((n, self.n_columns))
        col = 0
        if self.intercept:
            out[:, 0] = 1.0
            col = 1
        for f in self.features:
            out[:, col] = [f.value_for(self.view_attrs, k) for k in keys]
            col += 1
        return out

    def z_indices(self) -> list[int]:
        """Column indices of the random-effects matrix Z (§3.3.4)."""
        if self.random_effects is None:
            return list(range(self.n_columns))
        wanted = set(self.random_effects)
        unknown = wanted - set(self.column_names)
        if unknown:
            raise FeatureError(f"unknown random-effect columns {sorted(unknown)}")
        return [i for i, name in enumerate(self.column_names) if name in wanted]


@dataclass
class FeaturePlan:
    """Which features to build, and how (§3.3).

    ``specs=None`` means "main effect of every view attribute" — the
    paper's default featurization. ``extra_specs`` are appended to the
    defaults; passing explicit ``specs`` replaces them entirely.
    """

    specs: list[FeatureSpec] | None = None
    extra_specs: list[FeatureSpec] = field(default_factory=list)
    intercept: bool = True
    standardize: bool = True
    random_effects: tuple[str, ...] | None = None

    def realised_specs(self, view: GroupView) -> list[FeatureSpec]:
        if self.specs is not None:
            base = list(self.specs)
        else:
            base = [MainEffectFeature(a) for a in view.group_attrs]
        return base + list(self.extra_specs)

    def build(self, view: GroupView, target: str) -> FeatureSet:
        features: list[BuiltFeature] = []
        keys = list(view.groups)
        for spec in self.realised_specs(view):
            if not spec.applicable(view):
                continue
            built = spec.build(view, target)
            if self.standardize:
                feature_keys = [built.key_of(view.group_attrs, k) for k in keys]
                built = built.standardized(feature_keys)
            features.append(built)
        if not features and not self.intercept:
            raise FeatureError("no applicable features and no intercept")
        return FeatureSet(tuple(view.group_attrs), features,
                          intercept=self.intercept,
                          random_effects=self.random_effects)


@dataclass
class ViewDesign:
    """A cluster-sorted dense design over a view's groups."""

    keys: list[tuple]
    y: np.ndarray
    design: DenseDesign
    feature_set: FeatureSet
    cluster_attrs: tuple[str, ...]
    row_of: dict[tuple, int]


def build_view_design(view: GroupView, target: str, plan: FeaturePlan,
                      cluster_attrs: Sequence[str]) -> ViewDesign:
    """Dense design over a view's groups, clustered by ``cluster_attrs``.

    Rows are the view's groups sorted so each cluster (distinct
    ``cluster_attrs`` value combination — the parent groups of §3.2) is a
    contiguous run; ``y`` is the target statistic per group.
    """
    cluster_attrs = tuple(cluster_attrs)
    for a in cluster_attrs:
        if a not in view.group_attrs:
            raise FeatureError(f"cluster attribute {a!r} not in view")
    positions = [view.group_attrs.index(a) for a in cluster_attrs]

    def cluster_key(key: tuple) -> tuple:
        return tuple(key[p] for p in positions)

    keys = sorted(view.groups,
                  key=lambda k: (_orderable(cluster_key(k)), _orderable(k)))
    if not keys:
        raise FeatureError("cannot build a design over an empty view")
    sizes: list[int] = []
    prev = object()
    for k in keys:
        ck = cluster_key(k)
        if ck != prev:
            sizes.append(0)
            prev = ck
        sizes[-1] += 1

    feature_set = plan.build(view, target)
    x = feature_set.design_rows(keys)
    y = np.asarray([view.groups[k].statistic(target) for k in keys])
    design = DenseDesign(x, sizes, z_columns=feature_set.z_indices())
    return ViewDesign(keys=keys, y=y, design=design, feature_set=feature_set,
                      cluster_attrs=cluster_attrs,
                      row_of={k: i for i, k in enumerate(keys)})


def _orderable(key: tuple) -> tuple:
    """Sort key tolerant of mixed types across attributes."""
    return tuple((type(v).__name__, v) for v in key)
