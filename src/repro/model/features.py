"""Feature generation for the repair model (§3.3, Appendices B and H).

Reptile featurizes drill-down *groups*, not raw records. Every feature is
a mapping from attribute value(s) to a float:

* **Main effects** (§3.3.1) — each categorical attribute value is replaced
  by the median target statistic of the groups carrying that value (the
  anomaly-detection featurization of [28, 50]); numeric features are
  centered and normalized.
* **Auxiliary features** (§3.3.2) — measures of a registered auxiliary
  dataset, keyed on its join attributes, included once the drill-down
  level contains all join attributes.
* **Custom features** (§3.3.3) — user-supplied ``q(A, Y) → {value: float}``
  functions; :class:`LagFeature` implements the paper's "previous year's
  severity" example.
* **Random effects** (§3.3.4) — ``FeaturePlan(random_effects=[...])``
  restricts which features enter Z; default Z = X.

:func:`build_view_design` turns a :class:`GroupView` into a cluster-sorted
dense design (the accuracy-experiment path); the same
:class:`BuiltFeature` mappings convert to factorised
:class:`~repro.factorized.matrix.FeatureColumn` objects for the
performance path.
"""

from __future__ import annotations

import abc
import statistics
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..relational.cube import GroupView
from ..relational.dataset import AuxiliaryDataset
from .backends import DenseDesign


class FeatureError(ValueError):
    """Raised for inapplicable or malformed feature specifications."""


class BuiltFeature:
    """A realised feature: value(s) of ``attributes`` → float.

    Two interchangeable backings. The classic form carries the
    ``mapping`` dict directly. Single-attribute features built against an
    encoded view instead carry a per-domain-code value ``table`` aligned
    with the encoding's domain — element ``i`` equals
    ``float(mapping.get(domain[i], default))`` bit for bit — and
    materialize ``mapping`` lazily: at fine-grained levels the dict is
    hundreds of thousands of entries that the design path (which gathers
    straight from the table) never reads.
    """

    __slots__ = ("name", "attributes", "default", "_mapping", "_domain",
                 "_table")

    def __init__(self, name: str, attributes: tuple[str, ...],
                 mapping: dict | None = None, default: float = 0.0, *,
                 domain: list | None = None,
                 table: np.ndarray | None = None):
        if mapping is None and table is None:
            mapping = {}
        self.name = name
        self.attributes = attributes
        self.default = default
        self._mapping = mapping
        self._domain = domain
        self._table = table

    @property
    def mapping(self) -> dict:
        """The value → float dict (materialized from the table on
        first access; absent domain values read ``default`` either way)."""
        if self._mapping is None:
            self._mapping = {v: float(x)
                             for v, x in zip(self._domain, self._table)}
        return self._mapping

    def domain_table(self, enc) -> np.ndarray | None:
        """The per-domain-code table when it aligns with ``enc``, else None.

        Identity on the domain *list* (shared, append-only across
        ``take`` views) plus a length check against in-place growth.
        """
        if self._table is not None and self._domain is enc.domain \
                and len(self._table) == len(enc.domain):
            return self._table
        return None

    def key_of(self, view_attrs: Sequence[str], group_key: tuple):
        positions = [view_attrs.index(a) for a in self.attributes]
        if len(positions) == 1:
            return group_key[positions[0]]
        return tuple(group_key[p] for p in positions)

    def value_for(self, view_attrs: Sequence[str], group_key: tuple) -> float:
        return float(self.mapping.get(self.key_of(view_attrs, group_key),
                                      self.default))

    def standardized(self, keys: list) -> "BuiltFeature":
        """Centered/normalized copy, statistics taken over ``keys``."""
        values = np.asarray([self.mapping.get(k, self.default) for k in keys],
                            dtype=float)
        return self.standardized_from(values)

    def standardized_from(self, values: np.ndarray) -> "BuiltFeature":
        """Centered/normalized copy; ``values`` are the per-group feature
        values (one per view group, in view order), however materialized —
        the array path computes them with a domain lookup instead of a
        per-group Python loop, and both paths land here."""
        mean = float(values.mean()) if len(values) else 0.0
        std = float(values.std()) if len(values) else 1.0
        if std < 1e-12:
            std = 1.0
        default = (self.default - mean) / std
        if self._table is not None:
            # Elementwise (v - mean) / std on the float64 table performs
            # the same IEEE operations as the per-key Python loop below.
            return BuiltFeature(self.name, self.attributes, None, default,
                                domain=self._domain,
                                table=(self._table - mean) / std)
        mapping = {k: (v - mean) / std for k, v in self.mapping.items()}
        return BuiltFeature(self.name, self.attributes, mapping, default)


def _view_arrays(view: GroupView):
    """The view's array-backed form ``(stats, key_codes, encodings)``.

    None when any piece is missing (hand-built dict views) — callers fall
    back to the per-group Python loops, which produce identical results.
    """
    stats = getattr(view, "stats", None)
    codes = getattr(view, "key_codes", None)
    encs = getattr(view, "encodings", None)
    if stats is None or codes is None or encs is None:
        return None
    return stats, codes, encs


#: Per-(view, target) memo of the target statistic's array/list forms
#: plus a one-slot box for the overall median: every feature of one
#: design build reads the identical array, and the overall median is a
#: function of that list alone, so sharing is bitwise-free. The strong
#: view reference pins the id; FIFO-capped.
_VIEW_TARGET_CACHE: dict[tuple[int, str], tuple] = {}
_VIEW_TARGET_CACHE_MAX = 32


def _target_values(view: GroupView, target: str, stats):
    key = (id(view), target)
    hit = _VIEW_TARGET_CACHE.get(key)
    if hit is not None and hit[0] is view:
        return hit[1], hit[2], hit[3]
    vals = stats.statistic_array(target)
    entry = (view, vals, vals.tolist(), [])
    while len(_VIEW_TARGET_CACHE) >= _VIEW_TARGET_CACHE_MAX:
        _VIEW_TARGET_CACHE.pop(next(iter(_VIEW_TARGET_CACHE)))
    _VIEW_TARGET_CACHE[key] = entry
    return entry[1], entry[2], entry[3]


def _overall_median(medbox: list, all_vals: list) -> float:
    """The memoized overall median (computed on first request)."""
    if not medbox:
        medbox.append(statistics.median(all_vals) if all_vals else 0.0)
    return medbox[0]


def _per_value_runs(view: GroupView, target: str, pos: int):
    """Per-attribute-value runs of the target statistic, vectorized.

    The array-path equivalent of the per-group loop in the main-effect and
    lag feature builders: one ``statistic_array`` call plus a stable
    argsort over the attribute's codes. Returns ``(encoding, run starts,
    run ends, sorted codes, sorted values, [all values], median box)`` —
    run ``i`` covers ``sorted_vals[starts[i]:ends[i]]``, in view order
    within the run (stable sort), so downstream medians see the exact
    lists the loop would have built. None when the view has no arrays.
    """
    arrays = _view_arrays(view)
    if arrays is None:
        return None
    stats, codes_m, encs = arrays
    vals, all_vals, medbox = _target_values(view, target, stats)
    codes = codes_m[:, pos]
    order = np.argsort(codes, kind="stable")
    sorted_vals = vals[order]
    sorted_codes = codes[order]
    if len(sorted_codes):
        boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [len(sorted_codes)]])
    else:
        starts = ends = np.empty(0, dtype=np.int64)
    return encs[pos], starts, ends, sorted_codes, sorted_vals, all_vals, \
        medbox


class FeatureSpec(abc.ABC):
    """Declarative feature; :meth:`build` realises it against a view."""

    @abc.abstractmethod
    def build(self, view: GroupView, target: str) -> BuiltFeature:
        """Realise the feature for ``view`` predicting statistic ``target``."""

    def applicable(self, view: GroupView) -> bool:
        """Whether the view's group-by level supports this feature."""
        return True


@dataclass
class MainEffectFeature(FeatureSpec):
    """Median target statistic per attribute value (§3.3.1).

    A value backed by fewer than ``min_groups`` groups maps to the overall
    median instead: its per-value median would just echo the group's own
    statistic back as a feature (a target leak that makes every prediction
    equal its observation and defeats the repair).
    """

    attribute: str
    min_groups: int = 2

    def applicable(self, view: GroupView) -> bool:
        return self.attribute in view.group_attrs

    def build(self, view: GroupView, target: str) -> BuiltFeature:
        if not self.applicable(view):
            raise FeatureError(
                f"attribute {self.attribute!r} not in view "
                f"{view.group_attrs}")
        pos = view.group_attrs.index(self.attribute)
        runs = _per_value_runs(view, target, pos)
        if runs is None:
            per_value: dict = {}
            for key, state in view.groups.items():
                per_value.setdefault(key[pos], []).append(
                    state.statistic(target))
            all_vals = [s.statistic(target) for s in view.groups.values()]
            overall = statistics.median(all_vals) if all_vals else 0.0
            mapping = {v: statistics.median(vals)
                       if len(vals) >= self.min_groups else overall
                       for v, vals in per_value.items()}
        else:
            enc, starts, ends, sorted_codes, sorted_vals, all_vals, \
                medbox = runs
            overall = _overall_median(medbox, all_vals)
            # Values backed by fewer than min_groups groups never need a
            # median (they map to the overall one) — the common case at
            # fine-grained levels, where every run is a singleton. The
            # result is a per-domain-code table (absent values also read
            # ``overall``, exactly what mapping.get's default produced);
            # the mapping dict materializes only if someone asks.
            table = np.full(len(enc.domain), float(overall))
            for i in np.flatnonzero(ends - starts >= self.min_groups):
                table[sorted_codes[starts[i]]] = statistics.median(
                    sorted_vals[starts[i]:ends[i]].tolist())
            return BuiltFeature(f"main:{self.attribute}", (self.attribute,),
                                default=overall, domain=enc.domain,
                                table=table)
        return BuiltFeature(f"main:{self.attribute}", (self.attribute,),
                            mapping, default=overall)


@dataclass
class AuxiliaryFeature(FeatureSpec):
    """One measure of an auxiliary dataset, keyed on its join attrs (§3.3.2)."""

    auxiliary: AuxiliaryDataset
    measure: str

    def applicable(self, view: GroupView) -> bool:
        return set(self.auxiliary.join_on) <= set(view.group_attrs)

    def build(self, view: GroupView, target: str) -> BuiltFeature:
        if self.measure not in self.auxiliary.measures:
            raise FeatureError(
                f"{self.measure!r} is not a measure of auxiliary dataset "
                f"{self.auxiliary.name!r}")
        lookup = self.auxiliary.lookup()
        single = len(self.auxiliary.join_on) == 1
        mapping = {}
        values = []
        for key, measures in lookup.items():
            mkey = key[0] if single else key
            mapping[mkey] = measures[self.measure]
            values.append(measures[self.measure])
        default = statistics.median(values) if values else 0.0
        return BuiltFeature(f"aux:{self.auxiliary.name}.{self.measure}",
                            tuple(self.auxiliary.join_on), mapping,
                            default=default)


@dataclass
class LagFeature(FeatureSpec):
    """Target statistic of the group at ``value − lag`` (§3.3.3 example).

    The attribute's values must support subtraction (years, day indexes).
    Groups whose lagged value is absent fall back to the overall median.
    """

    attribute: str
    lag: int = 1

    def applicable(self, view: GroupView) -> bool:
        return self.attribute in view.group_attrs

    def build(self, view: GroupView, target: str) -> BuiltFeature:
        pos = view.group_attrs.index(self.attribute)
        runs = _per_value_runs(view, target, pos)
        if runs is None:
            per_value: dict = {}
            for key, state in view.groups.items():
                per_value.setdefault(key[pos], []).append(
                    state.statistic(target))
            all_vals = [s.statistic(target) for s in view.groups.values()]
        else:
            enc, starts, ends, sorted_codes, sorted_vals, all_vals, \
                medbox = runs
            domain = enc.objects
            per_value = {domain[sorted_codes[s]]: sorted_vals[s:e].tolist()
                         for s, e in zip(starts, ends)}
        medians = {v: statistics.median(vals) for v, vals in per_value.items()}
        overall = statistics.median(all_vals) if all_vals else 0.0
        mapping = {}
        for v in medians:
            try:
                lagged = v - self.lag
            except TypeError:
                raise FeatureError(
                    f"lag feature needs numeric attribute, got {v!r}") from None
            mapping[v] = medians.get(lagged, overall)
        return BuiltFeature(f"lag{self.lag}:{self.attribute}",
                            (self.attribute,), mapping, default=overall)


@dataclass
class CustomFeature(FeatureSpec):
    """User-provided ``q(A, Y) → {value: feature}`` (§3.3.3).

    ``builder(view, target)`` returns the value → float mapping.
    """

    name: str
    attributes: tuple[str, ...]
    builder: Callable[[GroupView, str], Mapping]
    default: float = 0.0

    def applicable(self, view: GroupView) -> bool:
        return set(self.attributes) <= set(view.group_attrs)

    def build(self, view: GroupView, target: str) -> BuiltFeature:
        mapping = dict(self.builder(view, target))
        return BuiltFeature(f"custom:{self.name}", tuple(self.attributes),
                            mapping, default=self.default)


@dataclass
class FeatureSet:
    """Realised features plus the intercept, ready to become a matrix."""

    view_attrs: tuple[str, ...]
    features: list[BuiltFeature]
    intercept: bool = True
    random_effects: tuple[str, ...] | None = None

    @property
    def column_names(self) -> list[str]:
        names = ["intercept"] if self.intercept else []
        return names + [f.name for f in self.features]

    @property
    def n_columns(self) -> int:
        return len(self.features) + (1 if self.intercept else 0)

    def design_rows(self, keys: Sequence[tuple]) -> np.ndarray:
        """Dense (len(keys) × m) design matrix for the given group keys."""
        n = len(keys)
        out = np.empty((n, self.n_columns))
        col = 0
        if self.intercept:
            out[:, 0] = 1.0
            col = 1
        for f in self.features:
            out[:, col] = [f.value_for(self.view_attrs, k) for k in keys]
            col += 1
        return out

    def z_indices(self) -> list[int]:
        """Column indices of the random-effects matrix Z (§3.3.4)."""
        if self.random_effects is None:
            return list(range(self.n_columns))
        wanted = set(self.random_effects)
        unknown = wanted - set(self.column_names)
        if unknown:
            raise FeatureError(f"unknown random-effect columns {sorted(unknown)}")
        return [i for i, name in enumerate(self.column_names) if name in wanted]


@dataclass
class FeaturePlan:
    """Which features to build, and how (§3.3).

    ``specs=None`` means "main effect of every view attribute" — the
    paper's default featurization. ``extra_specs`` are appended to the
    defaults; passing explicit ``specs`` replaces them entirely.
    """

    specs: list[FeatureSpec] | None = None
    extra_specs: list[FeatureSpec] = field(default_factory=list)
    intercept: bool = True
    standardize: bool = True
    random_effects: tuple[str, ...] | None = None

    def realised_specs(self, view: GroupView) -> list[FeatureSpec]:
        if self.specs is not None:
            base = list(self.specs)
        else:
            base = [MainEffectFeature(a) for a in view.group_attrs]
        return base + list(self.extra_specs)

    def build(self, view: GroupView, target: str) -> FeatureSet:
        features: list[BuiltFeature] = []
        keys: list | None = None
        for spec in self.realised_specs(view):
            if not spec.applicable(view):
                continue
            built = spec.build(view, target)
            if self.standardize:
                values = _feature_column(view, built)
                if values is None:
                    if keys is None:
                        keys = list(view.groups)
                    feature_keys = [built.key_of(view.group_attrs, k)
                                    for k in keys]
                    values = np.asarray(
                        [built.mapping.get(k, built.default)
                         for k in feature_keys], dtype=float)
                built = built.standardized_from(values)
            features.append(built)
        if not features and not self.intercept:
            raise FeatureError("no applicable features and no intercept")
        return FeatureSet(tuple(view.group_attrs), features,
                          intercept=self.intercept,
                          random_effects=self.random_effects)


@dataclass
class ViewDesign:
    """A cluster-sorted dense design over a view's groups."""

    keys: list[tuple]
    y: np.ndarray
    design: DenseDesign
    feature_set: FeatureSet
    cluster_attrs: tuple[str, ...]
    _row_of: dict[tuple, int] | None = None

    @property
    def row_of(self) -> dict[tuple, int]:
        """Key → row index, built lazily: only explanation rendering
        looks design rows up by key, and at fine-grained levels the dict
        costs more than the whole model fit."""
        if self._row_of is None:
            self._row_of = {k: i for i, k in enumerate(self.keys)}
        return self._row_of


def _feature_column(view: GroupView, built: BuiltFeature,
                    perm: np.ndarray | None = None) -> np.ndarray | None:
    """Per-group values of one built feature via encoded-domain lookup.

    One ``float(mapping.get(...))`` per *domain value* followed by a code
    gather replaces the per-group ``value_for`` loop; element ``i`` is
    bitwise-equal to ``built.value_for(view.group_attrs, keys[i])``.
    Features that already carry an aligned :meth:`~BuiltFeature.
    domain_table` skip even the per-domain loop and gather straight from
    it. ``perm`` reorders the rows (the design's cluster sort). None when
    the view has no arrays or the feature reads more than one attribute.
    """
    arrays = _view_arrays(view)
    if arrays is None or len(built.attributes) != 1 \
            or built.attributes[0] not in view.group_attrs:
        return None
    _, codes_m, encs = arrays
    pos = view.group_attrs.index(built.attributes[0])
    domain_arr = built.domain_table(encs[pos])
    if domain_arr is None:
        mapping, default = built.mapping, built.default
        domain_arr = np.asarray([float(mapping.get(v, default))
                                 for v in encs[pos].domain], dtype=float)
    codes = codes_m[:, pos]
    if perm is not None:
        codes = codes[perm]
    return domain_arr[codes]


def _x_fill_task(source, spec, lo, hi):
    """Worker: gather one row range of a design's feature columns.

    ``spec`` is ``[(shared array name, per-domain lookup array), ...]``,
    one entry per feature column; the gather is elementwise, so the block
    is bitwise-equal to rows ``[lo, hi)`` of the serial
    :func:`_feature_column` fill.
    """
    import os
    import time

    from ..relational.shard import shared_arrays

    start = time.perf_counter()
    arrays, release = shared_arrays(source)
    try:
        block = np.empty((hi - lo, len(spec)))
        for j, (name, domain_arr) in enumerate(spec):
            block[:, j] = domain_arr[arrays[name][lo:hi]]
    finally:
        release()
    return block, time.perf_counter() - start, os.getpid()


def _sharded_x_fill(view: GroupView, feature_set: FeatureSet,
                    perm: np.ndarray, x: np.ndarray, col0: int,
                    sharder) -> bool:
    """Fill the feature columns of ``x`` through the shard executor.

    Workers gather contiguous row ranges from the perm-ordered key codes
    (shared-memory) against per-feature domain lookup arrays — the exact
    arrays the serial :func:`_feature_column` path gathers from, so the
    assembled matrix is bitwise-identical. Returns False (nothing
    written) when any feature lacks the single-attribute fast path; the
    caller then falls back to the serial fill.
    """
    arrays = _view_arrays(view)
    if arrays is None:
        return False
    _, codes_m, encs = arrays
    shared: dict[str, np.ndarray] = {}
    spec: list[tuple[str, np.ndarray]] = []
    for built in feature_set.features:
        if len(built.attributes) != 1 \
                or built.attributes[0] not in view.group_attrs:
            return False
        pos = view.group_attrs.index(built.attributes[0])
        name = f"a{pos}"
        if name not in shared:
            shared[name] = np.ascontiguousarray(codes_m[:, pos][perm])
        domain_arr = built.domain_table(encs[pos])
        if domain_arr is None:
            mapping, default = built.mapping, built.default
            domain_arr = np.asarray([float(mapping.get(v, default))
                                     for v in encs[pos].domain], dtype=float)
        spec.append((name, domain_arr))
    ranges = sharder.ranges(x.shape[0])
    blocks = sharder.run_shared(_x_fill_task, shared,
                                [(spec, lo, hi) for lo, hi in ranges],
                                stage="features")
    for (lo, hi), block in zip(ranges, blocks):
        x[lo:hi, col0:] = block
    return True


#: Domain-rank memo keyed by domain-list identity. Safe because
#: encodings share (never copy) their domain list across ``take`` views
#: and ``extend_domain`` only ever *appends* — the length check catches
#: an in-place extension, and holding the list strongly pins its id.
#: Bounded: oldest entries evicted past the cap.
_DOMAIN_RANK_CACHE: dict[int, tuple[list, int, "np.ndarray | None"]] = {}
_DOMAIN_RANK_CACHE_MAX = 128


def _domain_ranks(enc) -> np.ndarray | None:
    """Code→rank table reproducing :func:`_orderable` order, or ``None``.

    For a non-``sort_friendly`` encoding (chunk-streamed domains append
    out of order) the Python key sort can still be replayed as a lexsort
    when every domain value has a *strict* position in the
    ``(type name, value)`` order: sort the domain once, assign ranks, and
    gather. Declines (``None``) on NaN values (not a total order under
    ``<``) and on ``_orderable`` ties between distinct domain values (the
    Python sort would resolve those through later key columns; a rank
    table would not). Memoized per domain list — every view built over
    the same dataset shares the table.
    """
    domain = enc.domain
    hit = _DOMAIN_RANK_CACHE.get(id(domain))
    if hit is not None and hit[0] is domain and hit[1] == len(domain):
        return hit[2]
    ranks: np.ndarray | None = np.empty(len(domain), dtype=np.int64)
    try:
        order = sorted(range(len(domain)),
                       key=lambda i: _orderable((domain[i],)))
        prev = None
        for rank, i in enumerate(order):
            v = domain[i]
            if isinstance(v, float) and v != v:
                ranks = None
                break
            cur = _orderable((v,))
            if prev is not None and not prev < cur:
                ranks = None   # tie between distinct values: decline
                break
            prev = cur
            ranks[i] = rank
    except TypeError:          # unorderable mixed values
        ranks = None
    while len(_DOMAIN_RANK_CACHE) >= _DOMAIN_RANK_CACHE_MAX:
        _DOMAIN_RANK_CACHE.pop(next(iter(_DOMAIN_RANK_CACHE)))
    _DOMAIN_RANK_CACHE[id(domain)] = (domain, len(domain), ranks)
    return ranks


def _sort_permutation(view: GroupView, keys: list,
                      cluster_positions: list[int]) -> np.ndarray:
    """Row permutation of the design's cluster sort.

    ``np.lexsort`` over the encoded key codes when every encoding is
    :meth:`~repro.relational.encoding.DictEncoding.sort_friendly` (code
    order then equals the ``(type name, value)`` order of
    :func:`_orderable`), or over :func:`_domain_ranks` tables when the
    domains merely *rank* cleanly (chunk-streamed encodings); otherwise
    the original Python sort over decoded keys — same permutation every
    way.
    """
    n = len(keys)
    arrays = _view_arrays(view)
    if arrays is not None:
        _, codes, encs = arrays
        if codes.shape[1] == 0:
            return np.arange(n, dtype=np.int64)
        if all(e.sort_friendly() for e in encs):
            order_cols = [codes[:, p] for p in cluster_positions] \
                + [codes[:, j] for j in range(codes.shape[1])]
            return np.lexsort(tuple(reversed(order_cols)))
        rank_tables = [_domain_ranks(e) for e in encs]
        if all(r is not None for r in rank_tables):
            ranked = [rank_tables[j][codes[:, j]]
                      for j in range(codes.shape[1])]
            order_cols = [ranked[p] for p in cluster_positions] + ranked
            return np.lexsort(tuple(reversed(order_cols)))

    def sort_key(i: int) -> tuple:
        k = keys[i]
        ck = tuple(k[p] for p in cluster_positions)
        return (_orderable(ck), _orderable(k))

    return np.asarray(sorted(range(n), key=sort_key), dtype=np.int64)


def _cluster_sizes(view: GroupView, keys_sorted: list,
                   cluster_positions: list[int],
                   perm: np.ndarray) -> list[int]:
    """Run lengths of consecutive equal cluster keys, in sorted order.

    Vectorized over the encoded key codes when available (code equality is
    value equality, including the same-NaN-object case the tuple compare
    resolves by identity); Python run loop otherwise.
    """
    if not cluster_positions:
        return [len(keys_sorted)]
    arrays = _view_arrays(view)
    if arrays is not None:
        codes = arrays[1][perm][:, cluster_positions]
        change = np.any(codes[1:] != codes[:-1], axis=1)
        edges = np.concatenate([[0], np.flatnonzero(change) + 1,
                                [len(keys_sorted)]])
        return np.diff(edges).tolist()
    sizes: list[int] = []
    prev = object()
    for k in keys_sorted:
        ck = tuple(k[p] for p in cluster_positions)
        if ck != prev:
            sizes.append(0)
            prev = ck
        sizes[-1] += 1
    return sizes


def build_view_designs(view: GroupView, targets: Sequence[str],
                       plan: FeaturePlan, cluster_attrs: Sequence[str],
                       sharder=None) -> list[ViewDesign]:
    """One cluster-sorted dense design per target statistic.

    The structural work — the cluster sort, the cluster run lengths, the
    key→row index — is computed once and shared by every target; only the
    (target-dependent) feature values and y vector are built per target.
    On array-backed views both are vectorized: feature columns come from
    encoded-domain lookups (no per-row ``value_for`` calls) and y from
    :meth:`~repro.relational.aggregates.GroupStats.statistic_array`.

    ``sharder`` (a :class:`~repro.relational.shard.ShardExecutor`) fans
    the per-target feature-column fill out over contiguous row ranges;
    the gathers are elementwise, so the assembled designs are
    bitwise-identical to the serial ones.
    """
    cluster_attrs = tuple(cluster_attrs)
    for a in cluster_attrs:
        if a not in view.group_attrs:
            raise FeatureError(f"cluster attribute {a!r} not in view")
    positions = [view.group_attrs.index(a) for a in cluster_attrs]
    keys = view.key_list  # view iteration order — what perm/row_of assume
    if not keys:
        raise FeatureError("cannot build a design over an empty view")
    perm = _sort_permutation(view, keys, positions)
    keys_sorted = [keys[i] for i in perm]
    sizes = _cluster_sizes(view, keys_sorted, positions, perm)
    stats = getattr(view, "stats", None)

    designs: list[ViewDesign] = []
    for target in targets:
        feature_set = plan.build(view, target)
        x = np.empty((len(keys_sorted), feature_set.n_columns))
        col = 0
        if feature_set.intercept:
            x[:, 0] = 1.0
            col = 1
        filled = False
        if sharder is not None and getattr(sharder, "n_parts", 1) > 1 \
                and feature_set.features:
            filled = _sharded_x_fill(view, feature_set, perm, x, col, sharder)
        if not filled:
            for built in feature_set.features:
                column = _feature_column(view, built, perm)
                if column is None:
                    column = [built.value_for(view.group_attrs, k)
                              for k in keys_sorted]
                x[:, col] = column
                col += 1
        if stats is not None:
            y = stats.statistic_array(target)[perm]
        else:
            y = np.asarray([view.groups[k].statistic(target)
                            for k in keys_sorted])
        design = DenseDesign(x, sizes, z_columns=feature_set.z_indices())
        designs.append(ViewDesign(keys=keys_sorted, y=y, design=design,
                                  feature_set=feature_set,
                                  cluster_attrs=cluster_attrs))
    return designs


def build_view_design(view: GroupView, target: str, plan: FeaturePlan,
                      cluster_attrs: Sequence[str]) -> ViewDesign:
    """Dense design over a view's groups, clustered by ``cluster_attrs``.

    Rows are the view's groups sorted so each cluster (distinct
    ``cluster_attrs`` value combination — the parent groups of §3.2) is a
    contiguous run; ``y`` is the target statistic per group.
    """
    return build_view_designs(view, (target,), plan, cluster_attrs)[0]


def _orderable(key: tuple) -> tuple:
    """Sort key tolerant of mixed types across attributes."""
    return tuple((type(v).__name__, v) for v in key)
