"""The concurrent multi-tenant HTTP/JSON front end.

:class:`ServerApp` maps HTTP requests onto an
:class:`~repro.serving.service.ExplanationService` and enforces the
serving policies the in-process API leaves to the caller:

* **Snapshot isolation** — every query endpoint runs under the owning
  dataset's read lock (via ``service.with_session``/``submit_batch``),
  so all aggregates in one response come from a single ``data_version``
  — reported in the response — while ``/ingest`` and ``/refresh`` take
  the exclusive write lock.
* **Cross-request batching** — concurrent ``POST /datasets/{d}/recommend``
  requests hitting the same (group-by, filters) view coalesce through a
  short :class:`~repro.serving.concurrency.BatchWindow` into one
  cube/ranker pass (the cross-request extension of the service's
  same-view complaint collapsing).
* **Admission control** — a bounded worker pool plus bounded queue;
  overload answers 429/503 with a ``Retry-After`` hint instead of
  queueing without bound.
* **Telemetry** — per-endpoint request counts and p50/p99 latency at
  ``GET /stats``, alongside cache hit rate and batch collapse ratio.

The transport is the stdlib :class:`http.server.ThreadingHTTPServer`
(one handler thread per connection; the admission controller bounds how
many execute at once). :meth:`ReptileHTTPServer.shutdown_gracefully`
stops accepting, lets in-flight requests drain, then closes.

Routes (all JSON)::

    GET    /healthz
    GET    /stats
    GET    /datasets
    GET    /datasets/{name}
    POST   /datasets/{name}/sessions   {group_by?, filters?, staleness?,
                                        session_id?}
    POST   /datasets/{name}/recommend  complaint spec (batched per view)
    POST   /datasets/{name}/ingest     {rows?, retract?}
    POST   /datasets/{name}/refresh
    GET    /sessions/{sid}
    GET    /sessions/{sid}/view
    POST   /sessions/{sid}/recommend   complaint spec
    POST   /sessions/{sid}/drill       {hierarchy, coordinates?}
    POST   /sessions/{sid}/sync
    DELETE /sessions/{sid}             (or POST /sessions/{sid}/close)

Complaint spec: ``{"aggregate": "mean", "direction": "too_low",
"coordinates": {...}, "k"?, "target"?}`` plus, on the dataset endpoint,
``"group_by"`` and ``"filters"`` placing the view.
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Mapping, Sequence

import numpy as np

from ..core.complaint import Complaint
from ..core.ranker import DrilldownRecommendation, Recommendation, ScoredGroup
from ..core.session import SessionError, StaleDataError
from ..relational.cube import GroupView
from ..relational.delta import DeltaError
from .concurrency import (AdmissionController, BatchWindow, LockTimeout,
                          RequestTimeout, ServerOverloaded, Telemetry,
                          trace)
from .health import IngestFailure
from .service import ComplaintRequest, ExplanationService, ServiceError

__all__ = ["RequestError", "ServerApp", "ReptileHTTPServer", "serve_http",
           "parse_complaint_spec"]


class RequestError(ValueError):
    """A malformed request body or path (HTTP 400)."""


# -- JSON helpers ----------------------------------------------------------------
def jsonable(value):
    """Coerce engine values (numpy scalars, tuples, NaN) into JSON types."""
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    return repr(value)


def _group_payload(group: ScoredGroup) -> dict:
    return {
        "key": jsonable(group.key),
        "coordinates": jsonable(group.coordinates),
        "score": jsonable(group.score),
        "margin_gain": jsonable(group.margin_gain),
        "observed": jsonable(group.observed),
        "expected": jsonable(group.expected),
        "repaired_value": jsonable(group.repaired_value),
    }


def _hierarchy_payload(rec: DrilldownRecommendation) -> dict:
    return {
        "attribute": rec.attribute,
        "base_penalty": jsonable(rec.base_penalty),
        "groups": [_group_payload(g) for g in rec.groups],
    }


def recommendation_payload(recommendation: Recommendation,
                           data_version: int) -> dict:
    best = recommendation.best_group
    return {
        "data_version": data_version,
        "complaint": repr(recommendation.complaint),
        "best_hierarchy": recommendation.best_hierarchy,
        "best_group": None if best is None else _group_payload(best),
        "hierarchies": {
            name: _hierarchy_payload(rec)
            for name, rec in recommendation.per_hierarchy.items()},
    }


def view_payload(view: GroupView, data_version: int,
                 filters: Mapping) -> dict:
    groups = []
    for key, state in view.groups.items():
        count = int(state.count)
        total = float(state.total)
        groups.append({
            "key": jsonable(key),
            "coordinates": jsonable(dict(zip(view.group_attrs, key))),
            "count": count,
            "sum": jsonable(total),
            "sumsq": jsonable(float(state.sumsq)),
            "mean": jsonable(total / count) if count else None,
        })
    return {
        "data_version": data_version,
        "group_by": list(view.group_attrs),
        "filters": jsonable(dict(filters)),
        "groups": groups,
    }


def parse_complaint_spec(spec) -> ComplaintRequest:
    """A JSON complaint spec -> :class:`ComplaintRequest` (or 400)."""
    if not isinstance(spec, dict):
        raise RequestError(f"request body must be a JSON object, "
                           f"got {type(spec).__name__}")
    for required in ("aggregate", "coordinates"):
        if required not in spec:
            raise RequestError(f"complaint spec is missing {required!r}")
    for name in ("coordinates", "filters"):
        mapping = spec.get(name, {})
        if not isinstance(mapping, dict) or any(
                isinstance(v, (list, dict)) for v in mapping.values()):
            raise RequestError(
                f"{name!r} must map attributes to scalar values")
    direction = spec.get("direction", "too_low")
    coordinates, aggregate = spec["coordinates"], spec["aggregate"]
    try:
        if direction == "too_low":
            complaint = Complaint.too_low(coordinates, aggregate)
        elif direction == "too_high":
            complaint = Complaint.too_high(coordinates, aggregate)
        elif direction == "should_be":
            if "target" not in spec:
                raise RequestError("should_be complaints need 'target'")
            complaint = Complaint.should_be(coordinates, aggregate,
                                            float(spec["target"]))
        else:
            raise RequestError(f"unknown direction {direction!r} "
                               f"(use too_low, too_high or should_be)")
    except (TypeError, ValueError) as exc:
        raise RequestError(str(exc)) from None
    group_by = spec.get("group_by", ())
    if isinstance(group_by, str) or not all(
            isinstance(a, str) for a in group_by):
        raise RequestError("'group_by' must be a list of attribute names")
    k = spec.get("k")
    if k is not None and (not isinstance(k, int) or k < 1):
        raise RequestError("'k' must be a positive integer")
    return ComplaintRequest(complaint, tuple(group_by),
                            dict(spec.get("filters", {})), k=k)


def _rows_spec(spec, what: str) -> list:
    if spec is None:
        return []
    if not isinstance(spec, list):
        raise RequestError(f"{what!r} must be a JSON list of rows")
    return spec


# -- the application -------------------------------------------------------------
class ServerApp:
    """Routes HTTP requests onto an :class:`ExplanationService`.

    Transport-independent: :meth:`dispatch` takes ``(method, path,
    body)`` and returns ``(status, headers, payload)``, so the
    concurrency tests and benchmarks can drive the exact serving logic
    — locks, batching, admission, telemetry — without sockets, while
    :class:`ReptileHTTPServer` puts real HTTP in front of it.
    """

    def __init__(self, service: ExplanationService,
                 max_concurrent: int = 8, max_queue: int = 64,
                 queue_timeout: float = 2.0,
                 batch_window_seconds: float = 0.002,
                 request_timeout: float | None = None):
        self.service = service
        self.request_timeout = request_timeout
        self.admission = AdmissionController(max_concurrent, max_queue,
                                             queue_timeout)
        self.batches = BatchWindow(batch_window_seconds)
        self.telemetry = Telemetry()
        self._session_counter = 0
        self._counter_lock = threading.Lock()
        self._inflight = 0
        self._inflight_cond = threading.Condition()
        self._draining = False
        self.started = time.time()

    # -- lifecycle ---------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Refuse new work (503) while in-flight requests finish."""
        self._draining = True

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no request is in flight; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._inflight_cond:
            while self._inflight > 0:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._inflight_cond.wait(remaining)
            return True

    # -- dispatch ----------------------------------------------------------------
    def dispatch(self, method: str, path: str, body=None):
        """One request: returns ``(status, headers, payload)``."""
        path = path.split("?", 1)[0].rstrip("/")
        endpoint, handler, args = self._route(method, path)
        if handler is None:
            return endpoint  # _route returned an error triple
        if self._draining and endpoint not in ("healthz", "stats"):
            return 503, {"Retry-After": "1"}, {
                "error": "server is draining", "retry_after": 1}
        with self._inflight_cond:
            self._inflight += 1
        try:
            with self.telemetry.timed(endpoint):
                trace("server.request", endpoint=endpoint)
                if endpoint in _ADMITTED:
                    with self.admission.admit():
                        return self._run_deadlined(endpoint, handler, args,
                                                   body)
                return handler(*args, body)
        except ServerOverloaded as exc:
            retry = int(math.ceil(exc.retry_after))
            return exc.status, {"Retry-After": str(retry)}, {
                "error": str(exc), "retry_after": retry}
        except StaleDataError as exc:
            return 409, {}, {"error": str(exc), "pinned": exc.pinned,
                             "current": exc.current}
        except ServiceError as exc:
            return 404, {}, {"error": str(exc.args[0] if exc.args else exc)}
        except LockTimeout as exc:
            return 503, {"Retry-After": "1"}, {"error": str(exc),
                                               "retry_after": 1}
        except IngestFailure as exc:
            # The dataset rolled back and keeps serving its last good
            # snapshot; the 503 carries the degraded marker + version.
            return 503, {"Retry-After": "1"}, {
                "error": str(exc), "degraded": True,
                "dataset": exc.dataset, "data_version": exc.data_version,
                "retry_after": 1}
        except (RequestError, SessionError, DeltaError, ValueError,
                TypeError) as exc:
            return 400, {}, {"error": str(exc)}
        except Exception as exc:
            # Availability backstop: an unexpected failure (an injected
            # fault, a sick backend) must answer as a degraded 503, never
            # as a raw 500 — reads of the last good snapshot keep working
            # and the client knows to retry.
            return 503, {"Retry-After": "1"}, {
                "error": f"{type(exc).__name__}: {exc}", "degraded": True,
                "retry_after": 1}
        finally:
            with self._inflight_cond:
                self._inflight -= 1
                if self._inflight == 0:
                    self._inflight_cond.notify_all()

    def _run_deadlined(self, endpoint: str, handler, args, body):
        """Run a handler under the per-request deadline (if configured).

        Threads cannot be cancelled, so the deadline releases the
        *admission slot*, not the computation: the handler keeps running
        on a daemon helper thread (its result discarded, its cache fills
        still useful) while the client gets a 503 + ``Retry-After``
        instead of a worker slot pinned indefinitely.
        """
        timeout = self.request_timeout
        if timeout is None or endpoint not in _DEADLINED:
            return handler(*args, body)
        outcome: list = []

        def run():
            try:
                outcome.append((True, handler(*args, body)))
            except BaseException as exc:  # re-raised on the caller thread
                outcome.append((False, exc))

        worker = threading.Thread(target=run, daemon=True,
                                  name=f"reptile-req-{endpoint}")
        worker.start()
        worker.join(timeout)
        if not outcome:
            raise RequestTimeout(
                f"{endpoint} exceeded the {timeout}s request deadline")
        ok, value = outcome[0]
        if not ok:
            raise value
        return value

    def _route(self, method: str, path: str):
        """Resolve a path to ``(endpoint, handler, args)`` or an error."""
        parts = [p for p in path.split("/") if p]
        if not parts:
            return ("healthz", self._healthz, ())
        head = parts[0]
        if head == "healthz" and len(parts) == 1:
            return self._expect(method, "GET", "healthz", self._healthz, ())
        if head == "stats" and len(parts) == 1:
            return self._expect(method, "GET", "stats", self._stats, ())
        if head == "datasets":
            if len(parts) == 1:
                return self._expect(method, "GET", "datasets",
                                    self._datasets, ())
            name = parts[1]
            if len(parts) == 2:
                return self._expect(method, "GET", "dataset",
                                    self._dataset_info, (name,))
            action = parts[2]
            handlers = {"sessions": ("open_session", self._open_session),
                        "recommend": ("batch_recommend",
                                      self._dataset_recommend),
                        "ingest": ("ingest", self._ingest),
                        "refresh": ("refresh", self._refresh)}
            if len(parts) == 3 and action in handlers:
                endpoint, handler = handlers[action]
                return self._expect(method, "POST", endpoint, handler,
                                    (name,))
        if head == "sessions" and len(parts) >= 2:
            sid = parts[1]
            if len(parts) == 2:
                if method == "DELETE":
                    return ("close_session", self._close_session, (sid,))
                return self._expect(method, "GET", "session",
                                    self._session_info, (sid,))
            action = parts[2]
            handlers = {"view": ("view", "GET", self._view),
                        "recommend": ("recommend", "POST", self._recommend),
                        "drill": ("drill", "POST", self._drill),
                        "sync": ("sync", "POST", self._sync),
                        "close": ("close_session", "POST",
                                  self._close_session)}
            if len(parts) == 3 and action in handlers:
                endpoint, want, handler = handlers[action]
                return self._expect(method, want, endpoint, handler, (sid,))
        return (404, {}, {"error": f"unknown route {method} {path!r}"}), \
            None, None

    @staticmethod
    def _expect(method, want, endpoint, handler, args):
        if method != want:
            return (405, {"Allow": want},
                    {"error": f"{endpoint} requires {want}"}), None, None
        return (endpoint, handler, args)

    # -- read-only endpoints -----------------------------------------------------
    def _healthz(self, body=None):
        """Real health: per-dataset state machine, pools, quarantines.

        Always 200 — a degraded dataset still *serves* (that is the
        point); the body says what is degraded so orchestrators can act.
        ``status`` is the worst of: draining > degraded > ok.
        """
        from .. import kernels
        datasets = self.service.health.snapshot()
        pools = {}
        for name in self.service.datasets:
            cube = self.service.engine(name).cube
            pool_health = getattr(cube, "pool_health", None)
            pools[name] = pool_health() if callable(pool_health) else None
        quarantined = kernels.quarantined_backends()
        degraded = sorted(name for name, state in datasets.items()
                          if state["state"] != "healthy")
        status = ("draining" if self._draining
                  else "degraded" if degraded else "ok")
        return 200, {}, jsonable({
            "status": status,
            "uptime_seconds": time.time() - self.started,
            "datasets": datasets,
            "degraded_datasets": degraded,
            "pools": pools,
            "quarantined_backends": quarantined,
        })

    def _degraded_marker(self, dataset: str, payload: dict) -> dict:
        """Stamp query payloads of a degraded dataset.

        ``degraded: true`` plus the payload's existing ``data_version``
        tell the client: consistent, but last-good-snapshot, data.
        """
        if self.service.health.is_degraded(dataset):
            payload["degraded"] = True
        return payload

    def _stats(self, body=None):
        return 200, {}, self.stats_payload()

    def stats_payload(self) -> dict:
        stats = self.service.stats()
        stats["endpoints"] = self.telemetry.snapshot()
        stats["admission"] = self.admission.stats()
        stats["batching"] = self.batches.stats()
        stats["draining"] = self._draining
        return jsonable(stats)

    def _datasets(self, body=None):
        names = self.service.datasets
        return 200, {}, {"datasets": [
            self._dataset_row(name) for name in names]}

    def _dataset_row(self, name: str) -> dict:
        engine = self.service.engine(name)
        return self._degraded_marker(name, {
            "name": name,
            "rows": len(engine.dataset.relation),
            "data_version": engine.data_version,
            "measure": engine.dataset.measure,
            "hierarchies": {h.name: list(h.attributes)
                            for h in engine.dataset.dimensions}})

    def _dataset_info(self, name: str, body=None):
        return 200, {}, self._dataset_row(name)

    def _session_info(self, sid: str, body=None):
        session = self.service.session(sid)
        return 200, {}, {
            "session_id": sid,
            "dataset": self.service.session_dataset(sid),
            "group_by": list(session.group_by),
            "filters": jsonable(session.filters),
            "staleness": session.staleness,
            "data_version": session.data_version,
            "stale": session.is_stale(),
        }

    # -- session lifecycle -------------------------------------------------------
    def _open_session(self, name: str, body):
        body = body or {}
        if not isinstance(body, dict):
            raise RequestError("body must be a JSON object")
        group_by = body.get("group_by", ())
        if isinstance(group_by, str) or not all(
                isinstance(a, str) for a in group_by):
            raise RequestError("'group_by' must be a list of attribute "
                               "names")
        filters = body.get("filters") or {}
        if not isinstance(filters, dict):
            raise RequestError("'filters' must be an object")
        sid = body.get("session_id")
        if sid is not None and ("/" in sid or not sid):
            raise RequestError("'session_id' must be a non-empty string "
                               "without '/'")
        if sid is None:
            with self._counter_lock:
                self._session_counter += 1
                sid = f"{name}.s{self._session_counter}"
        sid = self.service.open_session(
            name, session_id=sid, group_by=tuple(group_by),
            filters=filters, staleness=body.get("staleness"))
        return 201, {}, self._session_info(sid)[2]

    def _close_session(self, sid: str, body=None):
        self.service.close_session(sid)
        return 200, {}, {"closed": sid}

    # -- queries (read lock, snapshot-isolated) ----------------------------------
    def _view(self, sid: str, body=None):
        (view, filters), version = self.service.with_session(
            sid, lambda session: (session.view(), dict(session.filters)))
        return 200, {}, self._degraded_marker(
            self.service.session_dataset(sid),
            view_payload(view, version, filters))

    def _recommend(self, sid: str, body):
        request = parse_complaint_spec(body)
        if request.group_by or request.filters:
            raise RequestError(
                "session recommend takes no 'group_by'/'filters' — the "
                "session's position defines the view (use POST "
                "/datasets/{name}/recommend for one-shot queries)")
        recommendation, version = self.service.with_session(
            sid, lambda session: session.recommend(request.complaint,
                                                   k=request.k))
        return 200, {}, self._degraded_marker(
            self.service.session_dataset(sid),
            recommendation_payload(recommendation, version))

    def _drill(self, sid: str, body):
        body = body or {}
        hierarchy = body.get("hierarchy")
        if not isinstance(hierarchy, str):
            raise RequestError("'hierarchy' must name a hierarchy")
        coordinates = body.get("coordinates") or {}
        if not isinstance(coordinates, dict):
            raise RequestError("'coordinates' must be an object")
        _, version = self.service.with_session(
            sid, lambda session: session.drill(hierarchy, coordinates))
        return 200, {}, dict(self._session_info(sid)[2],
                             data_version=version)

    def _sync(self, sid: str, body=None):
        _, version = self.service.with_session(
            sid, lambda session: session.sync())
        return 200, {}, {"session_id": sid, "data_version": version}

    def _dataset_recommend(self, name: str, body):
        """One-shot recommend; concurrent same-view requests coalesce."""
        request = parse_complaint_spec(body)
        self.service.engine(name)  # unknown dataset -> 404 before batching
        try:
            key = (name, request.view_key())
        except TypeError as exc:
            raise RequestError(f"unhashable view key: {exc}") from None

        def execute(items: list[ComplaintRequest]) -> list:
            result = self.service.submit_batch(name, items)
            return [(item, result.data_version) for item in result.items]

        item, version = self.batches.run(key, request, execute)
        if item.error is not None:
            return 400, {}, {"error": item.error, "data_version": version}
        payload = recommendation_payload(item.recommendation, version)
        payload["batched"] = True
        return 200, {}, self._degraded_marker(name, payload)

    # -- maintenance (write lock) ------------------------------------------------
    def _ingest(self, name: str, body):
        body = body or {}
        if not isinstance(body, dict):
            raise RequestError("body must be a JSON object")
        engine = self.service.engine(name)
        schema = engine.dataset.relation.schema
        rows = self._delta_rows(_rows_spec(body.get("rows"), "rows"),
                                schema)
        retract = self._delta_rows(
            _rows_spec(body.get("retract"), "retract"), schema)
        if not rows and not retract:
            raise RequestError("ingest needs 'rows' and/or 'retract'")
        info = self.service.ingest(name, rows, retract=retract)
        return 200, {}, jsonable(info)

    @staticmethod
    def _delta_rows(specs: list, schema) -> list[tuple]:
        names = list(schema.names)
        rows = []
        for spec in specs:
            if isinstance(spec, dict):
                missing = [n for n in names if n not in spec]
                if missing:
                    raise RequestError(
                        f"row is missing columns {missing}: {spec!r}")
                rows.append(tuple(spec[n] for n in names))
            elif isinstance(spec, list):
                if len(spec) != len(names):
                    raise RequestError(
                        f"row of width {len(spec)} does not match schema "
                        f"{names}")
                rows.append(tuple(spec))
            else:
                raise RequestError(
                    f"each row must be an object or a list, got {spec!r}")
        return rows

    def _refresh(self, name: str, body=None):
        self.service.engine(name)  # 404 on unknown names
        removed = self.service.invalidate(name)
        engine = self.service.engine(name)
        return 200, {}, {"dataset": name, "invalidated": removed,
                         "data_version": engine.data_version}


#: Endpoints that pass through admission control. Health, stats and the
#: tiny registry reads stay outside so a saturated server remains
#: observable and sheds load cheaply.
_ADMITTED = frozenset({"view", "recommend", "drill", "sync",
                       "batch_recommend", "ingest", "refresh",
                       "open_session"})

#: Endpoints the per-request deadline applies to: read-only queries,
#: where abandoning the computation is safe. Maintenance endpoints
#: (ingest/refresh) are exempt — timing one out mid-commit would leave
#: the client unable to tell whether the delta landed.
_DEADLINED = frozenset({"view", "recommend", "batch_recommend"})


# -- the HTTP transport ----------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    """Thin JSON shell around :meth:`ServerApp.dispatch`."""

    app: ServerApp  # set on the per-server subclass
    protocol_version = "HTTP/1.1"
    quiet = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _handle(self, method: str) -> None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        raw = self.rfile.read(length) if length else b""
        if raw:
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                self._reply(400, {}, {"error": f"invalid JSON body: {exc}"})
                return
        else:
            body = None
        try:
            status, headers, payload = self.app.dispatch(method, self.path,
                                                         body)
        except Exception as exc:  # last-resort: never drop the connection
            # dispatch() already converts every failure; only a bug in
            # dispatch itself lands here. Still marked degraded so the
            # availability contract (no non-degraded 5xx) holds.
            status, headers, payload = 500, {}, {
                "error": f"{type(exc).__name__}: {exc}", "degraded": True}
        self._reply(status, headers, payload)

    def _reply(self, status: int, headers: dict, payload: dict) -> None:
        data = json.dumps(payload).encode()
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            for key, value in headers.items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-reply; nothing to salvage

    def do_GET(self) -> None:
        self._handle("GET")

    def do_POST(self) -> None:
        self._handle("POST")

    def do_DELETE(self) -> None:
        self._handle("DELETE")


class ReptileHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server over a :class:`ServerApp`.

    One handler thread per connection (HTTP/1.1 keep-alive reuses it);
    the app's admission controller bounds how many requests *execute*
    concurrently. ``daemon_threads`` keeps a hung client from pinning
    the process; graceful shutdown drains via the app's in-flight
    counter instead.
    """

    daemon_threads = True

    def __init__(self, address: tuple[str, int], app: ServerApp):
        handler = type("BoundHandler", (_Handler,), {"app": app})
        super().__init__(address, handler)
        self.app = app

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def shutdown_gracefully(self, timeout: float = 10.0) -> bool:
        """Stop accepting, drain in-flight requests, close the socket.

        New requests arriving while draining get a 503 with Retry-After.
        Returns False if requests were still in flight at the deadline
        (the socket is closed regardless).
        """
        self.app.begin_drain()
        self.shutdown()  # stops serve_forever; open connections live on
        drained = self.app.wait_idle(timeout)
        self.server_close()
        return drained


def serve_http(service: ExplanationService, host: str = "127.0.0.1",
               port: int = 0, *, max_concurrent: int = 8,
               max_queue: int = 64, queue_timeout: float = 2.0,
               batch_window_seconds: float = 0.002,
               request_timeout: float | None = None,
               ) -> tuple[ReptileHTTPServer, threading.Thread]:
    """Start a server in a background thread; returns (server, thread).

    ``port=0`` picks a free port — read it back from ``server.url``.
    Call ``server.shutdown_gracefully()`` to stop.
    """
    app = ServerApp(service, max_concurrent=max_concurrent,
                    max_queue=max_queue, queue_timeout=queue_timeout,
                    batch_window_seconds=batch_window_seconds,
                    request_timeout=request_timeout)
    server = ReptileHTTPServer((host, port), app)
    thread = threading.Thread(target=server.serve_forever,
                              name="reptile-http", daemon=True)
    thread.start()
    return server, thread
