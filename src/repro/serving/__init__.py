"""The serving layer: cached, batched, multi-session explanation queries.

Turns the single-session engine into a service: an LRU
:class:`AggregateCache` memoizes roll-ups, repair predictions and §4.4
hierarchy units across sessions and users; :class:`ExplanationService`
multiplexes named sessions, batches independent complaints per view, and
reports hit rates and per-stage timings.
"""

from .cache import (AggregateCache, CacheStats, StageTiming,
                    dataset_fingerprint, refresh_fingerprint)
from .engine import (CachingCube, CachingRepairer, freeze_filters,
                     patch_cache_for_delta, patch_view, plan_signature,
                     repairer_signature, spec_signature)
from .service import (BatchItem, BatchResult, ComplaintRequest,
                      ExplanationService, ServiceError)

__all__ = [
    "AggregateCache", "CacheStats", "StageTiming", "dataset_fingerprint",
    "refresh_fingerprint", "CachingCube", "CachingRepairer",
    "freeze_filters", "patch_cache_for_delta", "patch_view",
    "plan_signature", "repairer_signature",
    "spec_signature", "BatchItem", "BatchResult", "ComplaintRequest",
    "ExplanationService", "ServiceError",
]
