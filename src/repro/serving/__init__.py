"""The serving layer: cached, batched, multi-session explanation queries.

Turns the single-session engine into a service: an LRU
:class:`AggregateCache` memoizes roll-ups, repair predictions and §4.4
hierarchy units across sessions and users; :class:`ExplanationService`
multiplexes named sessions, batches independent complaints per view, and
reports hit rates and per-stage timings.
"""

from .cache import (AggregateCache, CacheStats, StageTiming,
                    dataset_fingerprint, refresh_fingerprint)
from .concurrency import (AdmissionController, BatchWindow, DatasetLocks,
                          LatencyStats, LockTimeout, ReadWriteLock,
                          ServerOverloaded, Telemetry, set_trace_hook)
from .engine import (CachingCube, CachingRepairer, CachingShardedCube,
                     CachingViews, freeze_filters, patch_cache_for_delta,
                     patch_view, plan_signature, repairer_signature,
                     spec_signature)
from .server import (ReptileHTTPServer, RequestError, ServerApp,
                     parse_complaint_spec, serve_http)
from .service import (BatchItem, BatchResult, ComplaintRequest,
                      ExplanationService, ServiceError)

__all__ = [
    "AggregateCache", "CacheStats", "StageTiming", "dataset_fingerprint",
    "refresh_fingerprint", "AdmissionController", "BatchWindow",
    "DatasetLocks", "LatencyStats", "LockTimeout", "ReadWriteLock",
    "ServerOverloaded", "Telemetry", "set_trace_hook", "CachingCube",
    "CachingShardedCube", "CachingViews",
    "CachingRepairer", "freeze_filters", "patch_cache_for_delta",
    "patch_view", "plan_signature", "repairer_signature",
    "spec_signature", "ReptileHTTPServer", "RequestError", "ServerApp",
    "parse_complaint_spec", "serve_http", "BatchItem", "BatchResult",
    "ComplaintRequest", "ExplanationService", "ServiceError",
]
