"""The aggregate cache backing the serving layer.

Reptile's hot path recomputes three families of intermediate results that
are pure functions of the data and the query position: group-by roll-ups
(:class:`~repro.relational.cube.GroupView`), per-level repair predictions
(model fits over the parallel groups), and per-hierarchy decomposed
aggregate units (§4.4 :class:`~repro.factorized.multiquery.HierarchyAggregates`).
:class:`AggregateCache` memoizes all of them behind one LRU store keyed by

    (kind, dataset fingerprint, ...position/configuration...)

so repeated and concurrent explanation queries — several complaints about
the same view, a replayed drill-down path, many users exploring the same
dataset — each pay the expensive computation once. The fingerprint pins
every entry to the exact data contents: a mutated dataset produces a new
fingerprint and therefore never aliases stale entries, while
:meth:`AggregateCache.invalidate` reclaims the memory explicitly.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable, Hashable, TypeVar

from ..relational.dataset import HierarchicalDataset
from ..robustness.faultinject import fault_point
from .concurrency import trace

T = TypeVar("T")

#: Attribute slot used to memoize fingerprints on a dataset instance.
_FINGERPRINT_ATTR = "_serving_fingerprint"


@dataclass
class CacheStats:
    """Counters exposed by :meth:`AggregateCache.stats`.

    What the ``stats`` property hands out is a point-in-time *snapshot*
    taken under the cache lock, never the live accounting object: under
    concurrent access a live object showed torn states (a ``hits``
    increment from one thread visible while the matching lookup's other
    counters were not yet, ``hit_rate`` dividing counters captured at
    two different instants), and arithmetic over two reads — the ingest
    path's ``stats.patched - patched0`` — could go backwards.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    #: Entries delta-merged in place by an ingest (touched by the delta).
    patched: int = 0
    #: Entries carried to a new data version untouched (delta missed them).
    retained: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class StageTiming:
    """Accumulated compute cost of one key kind (cache misses only)."""

    computations: int = 0
    seconds: float = 0.0


class AggregateCache:
    """A thread-safe LRU memo table for serving-layer intermediates.

    Parameters
    ----------
    max_entries:
        Upper bound on stored entries; the least recently *used* entry is
        evicted first. ``None`` disables eviction.

    Keys are hashable tuples whose first element names the result kind
    (``"view"``, ``"predict"``, ``"hunit"``, ...) and whose second element
    is the owning dataset's fingerprint — the convention
    :meth:`invalidate` relies on to drop a dataset's entries wholesale.
    """

    def __init__(self, max_entries: int | None = 4096):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.RLock()
        self._stats = CacheStats()
        self._timings: dict[str, StageTiming] = {}

    # -- mapping protocol ---------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list[Hashable]:
        """Snapshot of stored keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    # -- lookups ------------------------------------------------------------------
    def get(self, key: Hashable, default: T | None = None) -> T | None:
        """Fetch ``key`` (marking it most recently used), or ``default``."""
        with self._lock:
            if key not in self._entries:
                self._stats.misses += 1
                return default
            self._stats.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]  # type: ignore[return-value]

    def put(self, key: Hashable, value: object) -> None:
        """Store ``key`` as the most recently used entry, evicting LRU."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while (self.max_entries is not None
                   and len(self._entries) > self.max_entries):
                self._entries.popitem(last=False)
                self._stats.evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], T]) -> T:
        """``get(key)``, computing and storing the value on a miss.

        The compute call runs outside the lock (model fits can take
        seconds; concurrent queries for *different* keys must not
        serialize on it); concurrent misses for the same key may compute
        twice, last write wins — safe because entries are pure functions
        of their key.
        """
        with self._lock:
            if key in self._entries:
                self._stats.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]  # type: ignore[return-value]
            self._stats.misses += 1
        # First-touch fill: the compute deliberately runs unlocked. The
        # trace point lets the race harness hold two threads right here
        # to pin the concurrent-double-fill interleaving; the fault point
        # lets the chaos suite fail or delay the fill itself (the request
        # must surface the error without poisoning the cache — nothing is
        # stored unless compute() returns).
        trace("cache.fill", key=key)
        fault_point("cache.fill", key=key)
        start = time.perf_counter()
        value = compute()
        elapsed = time.perf_counter() - start
        kind = key[0] if isinstance(key, tuple) and key else "other"
        with self._lock:
            timing = self._timings.setdefault(str(kind), StageTiming())
            timing.computations += 1
            timing.seconds += elapsed
        self.put(key, value)
        return value

    def pop_fingerprint(self, fingerprint: str | None
                        ) -> list[tuple[Hashable, object]]:
        """Remove and return all entries of one dataset fingerprint.

        The delta-ingestion hook: entries come back in LRU order (least
        recently used first) so the caller can patch or retain each one
        under the new versioned fingerprint with recency preserved.
        Neither the removal nor the later re-put counts as an
        invalidation; use :meth:`note_patched` to record the outcome.
        """
        with self._lock:
            popped = [(k, v) for k, v in self._entries.items()
                      if isinstance(k, tuple) and len(k) > 1
                      and k[1] == fingerprint]
            for k, _ in popped:
                del self._entries[k]
            return popped

    def note_patched(self, patched: int, retained: int) -> None:
        """Record the outcome of one delta patch pass (for stats())."""
        with self._lock:
            self._stats.patched += patched
            self._stats.retained += retained

    # -- invalidation -------------------------------------------------------------
    def invalidate(self, fingerprint: str | None = None,
                   predicate: Callable[[Hashable], bool] | None = None) -> int:
        """Drop entries and return how many were removed.

        ``fingerprint`` drops every entry keyed to that dataset
        fingerprint (the second key element); ``predicate`` drops entries
        whose key satisfies it; with neither, everything is dropped.
        """
        if fingerprint is not None and predicate is not None:
            raise ValueError("pass fingerprint or predicate, not both")
        if fingerprint is not None:
            def predicate(key: Hashable) -> bool:  # noqa: A001 - local shadow
                return (isinstance(key, tuple) and len(key) > 1
                        and key[1] == fingerprint)
        with self._lock:
            if predicate is None:
                removed = len(self._entries)
                self._entries.clear()
            else:
                doomed = [k for k in self._entries if predicate(k)]
                for k in doomed:
                    del self._entries[k]
                removed = len(doomed)
            self._stats.invalidations += removed
            return removed

    def clear(self) -> None:
        """Drop every entry and reset statistics."""
        with self._lock:
            self._entries.clear()
            self._stats = CacheStats()
            self._timings.clear()

    # -- introspection ------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """An atomic point-in-time snapshot of the counters.

        Taken under the cache lock, so the fields are mutually
        consistent (``lookups == hits + misses`` always holds on a
        snapshot) and the returned object never changes afterwards —
        two snapshots straddling an operation can be subtracted safely.
        """
        with self._lock:
            return replace(self._stats)

    def timings(self) -> dict[str, StageTiming]:
        """Per-kind compute cost paid on misses (copy)."""
        with self._lock:
            return {k: StageTiming(t.computations, t.seconds)
                    for k, t in self._timings.items()}

    def __repr__(self) -> str:
        s = self._stats
        return (f"AggregateCache(n={len(self)}, max={self.max_entries}, "
                f"hits={s.hits}, misses={s.misses}, "
                f"hit_rate={s.hit_rate:.2f})")


# -- dataset fingerprinting ------------------------------------------------------
def dataset_fingerprint(dataset: HierarchicalDataset,
                        refresh: bool = False) -> str:
    """A stable digest of a dataset's schema, hierarchies and contents.

    Cache keys embed this fingerprint, so two datasets with identical
    rows share warm entries while any content change diverts lookups to
    fresh keys. The digest is memoized on the dataset instance; after
    mutating a dataset *in place* (e.g. editing a relation column), pass
    ``refresh=True`` — or call :func:`refresh_fingerprint` — to rehash.

    The per-column digests come from ``Relation.content_token``, which
    reuses the interned dictionary encodings (codes + domain) or raw
    array bytes and memoizes the result on the column — so cache-backed
    engines that rehash at construction pay O(1) per untouched column
    and only re-hash columns whose list was handed out for mutation.
    Columns never materialize Python lists just to be fingerprinted.
    """
    cached = getattr(dataset, _FINGERPRINT_ATTR, None)
    if cached is not None and not refresh:
        fingerprint, relation = cached
        if relation is dataset.relation:
            return fingerprint
    digest = hashlib.blake2b(digest_size=16)
    relation = dataset.relation
    digest.update(repr(tuple(relation.schema.names)).encode())
    dims = tuple((h.name, h.attributes) for h in dataset.dimensions)
    digest.update(repr(dims).encode())
    digest.update(repr(dataset.measure).encode())
    for aux_name in sorted(dataset.auxiliary):
        aux = dataset.auxiliary[aux_name]
        digest.update(repr((aux_name, aux.join_on, aux.measures)).encode())
        for column in aux.relation.schema.names:
            digest.update(aux.relation.content_token(column))
    for name in relation.schema.names:
        digest.update(relation.content_token(name))
    fingerprint = digest.hexdigest()
    setattr(dataset, _FINGERPRINT_ATTR, (fingerprint, relation))
    return fingerprint


def refresh_fingerprint(dataset: HierarchicalDataset) -> str:
    """Recompute a dataset's fingerprint after an in-place mutation."""
    return dataset_fingerprint(dataset, refresh=True)
