"""The explanation service: many sessions, shared cache, batched queries.

:class:`ExplanationService` is the front-end of the serving layer. It
multiplexes any number of named :class:`~repro.core.session.DrillSession`
objects over registered datasets, routes all of them through one shared
:class:`~repro.serving.cache.AggregateCache`, batches independent
complaints against the same view so the expensive per-view work (roll-up
+ model fits) runs once per view rather than once per complaint, and
exposes operational statistics — cache hit rate, per-stage compute
timings, request counts — for capacity monitoring.

Typical use::

    service = ExplanationService()
    service.register("drought", dataset)
    sid = service.open_session("drought", group_by=["year"],
                               filters={"district": "Ofla"})
    rec = service.recommend(sid, Complaint.too_low({"year": 1986}, "mean"))
    service.drill(sid, rec.best_hierarchy, rec.best_group.coordinates)
    print(service.stats()["cache"]["hit_rate"])
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from typing import Callable, TypeVar

from ..core.complaint import Complaint
from ..core.ranker import Recommendation
from ..core.session import DrillSession, Reptile, ReptileConfig
from ..model.features import FeaturePlan
from ..relational.dataset import HierarchicalDataset
from ..relational.delta import Delta, DeltaError
from ..robustness.faultinject import fault_point
from .cache import AggregateCache
from .concurrency import DatasetLocks
from .engine import freeze_filters
from .health import HealthRegistry, IngestFailure

R = TypeVar("R")


class ServiceError(KeyError):
    """Raised for unknown dataset or session names."""


@dataclass(frozen=True)
class ComplaintRequest:
    """One independent complaint in a batch.

    ``group_by``/``filters`` place the complaint's view exactly as
    :meth:`~repro.core.session.Reptile.session` would; requests sharing a
    view are answered from one shared evaluation pass.
    """

    complaint: Complaint
    group_by: tuple[str, ...] = ()
    filters: Mapping = field(default_factory=dict)
    k: int | None = None

    def view_key(self) -> tuple:
        return (tuple(self.group_by), freeze_filters(self.filters))


@dataclass
class BatchItem:
    """One request's outcome inside a :class:`BatchResult`.

    Exactly one of ``recommendation``/``error`` is set: a request that
    raises (bad coordinates, exhausted hierarchies, ...) is reported
    here instead of aborting the rest of the batch.
    """

    request: ComplaintRequest
    recommendation: Recommendation | None
    seconds: float
    error: str | None = None


@dataclass
class BatchResult:
    """Outcome of :meth:`ExplanationService.submit_batch`, request order."""

    items: list[BatchItem]
    total_seconds: float
    n_views: int  # distinct views the batch collapsed into
    #: The dataset version every item was answered at. The whole batch
    #: runs under one read-lock hold, so this is a single version — no
    #: item can observe a half-applied delta.
    data_version: int | None = None

    def recommendations(self) -> list[Recommendation | None]:
        """Per-request recommendations (None where the request errored)."""
        return [item.recommendation for item in self.items]


class ExplanationService:
    """Serve explanation queries over registered datasets.

    Parameters
    ----------
    max_entries:
        Capacity of the shared :class:`AggregateCache`.
    config:
        Default engine configuration for registered datasets.

    Concurrency contract: every dataset has a reader/writer lock
    (:attr:`locks`). Query methods — :meth:`recommend`, :meth:`drill`,
    :meth:`with_session`, :meth:`submit_batch` — hold the dataset's
    *read* lock for the whole request, so any number run concurrently
    while each observes exactly one ``data_version`` (snapshot
    isolation); the maintenance methods :meth:`ingest` and
    :meth:`invalidate` hold the *write* lock, excluding every reader
    while the delta threads through engine and cache. Requests against
    one session id additionally serialize on the session's own lock, so
    concurrent calls for the same session are safe (they queue). Lock
    ordering is fixed everywhere: dataset lock first, then the service
    registry lock, then the session lock — never the reverse.
    """

    def __init__(self, max_entries: int | None = 4096,
                 config: ReptileConfig | None = None, *,
                 auto_rebuild: bool = True):
        self.cache = AggregateCache(max_entries)
        self.default_config = config
        #: Per-dataset reader/writer locks (shared with the HTTP server).
        self.locks = DatasetLocks()
        #: Per-dataset health states (shared with the HTTP server):
        #: a failed ingest/refresh marks its dataset degraded here, reads
        #: keep serving the last good snapshot, and a background rebuild
        #: (when ``auto_rebuild``) restores health with capped backoff.
        self.health = HealthRegistry()
        self.auto_rebuild = auto_rebuild
        self._engines: dict[str, Reptile] = {}
        self._sessions: dict[str, tuple[str, DrillSession]] = {}
        self._rebuilders: dict[str, threading.Thread] = {}
        self._rebuild_sleep = time.sleep  # injectable: tests skip waits
        self._lock = threading.RLock()
        self._session_counter = 0
        self._recommend_count = 0
        self._recommend_seconds = 0.0

    # -- dataset registry ---------------------------------------------------------
    def register(self, name: str, dataset: HierarchicalDataset,
                 feature_plan: FeaturePlan | None = None,
                 config: ReptileConfig | None = None) -> Reptile:
        """Register a dataset under ``name``; returns its engine."""
        self.locks.for_dataset(name)  # create the lock up front
        with self._lock:
            if name in self._engines:
                raise ServiceError(f"dataset {name!r} already registered")
            engine = Reptile(dataset, feature_plan=feature_plan,
                             config=config or self.default_config,
                             cache=self.cache)
            self._engines[name] = engine
            self.health.mark_healthy(name, engine.data_version)
            return engine

    def engine(self, name: str) -> Reptile:
        try:
            return self._engines[name]
        except KeyError:
            raise ServiceError(f"unknown dataset {name!r}") from None

    @property
    def datasets(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._engines)

    # -- session registry ---------------------------------------------------------
    def open_session(self, dataset: str, session_id: str | None = None,
                     group_by: Sequence[str] = (),
                     filters: Mapping | None = None,
                     staleness: str | None = None) -> str:
        """Open a named drill session; returns its id.

        Runs under the dataset's read lock so the new session pins a
        fully-applied ``data_version`` — never one mid-ingest.
        """
        engine = self.engine(dataset)
        with self.locks.read(dataset):
            with self._lock:
                if session_id is None:
                    self._session_counter += 1
                    session_id = f"{dataset}/s{self._session_counter}"
                elif session_id in self._sessions:
                    raise ServiceError(f"session {session_id!r} already open")
                self._sessions[session_id] = (
                    dataset, engine.session(group_by, filters,
                                            staleness=staleness))
                return session_id

    def session(self, session_id: str) -> DrillSession:
        return self._session_entry(session_id)[1]

    def session_dataset(self, session_id: str) -> str:
        """The dataset name a session is bound to."""
        return self._session_entry(session_id)[0]

    def _session_entry(self, session_id: str) -> tuple[str, DrillSession]:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise ServiceError(f"unknown session {session_id!r}") from None

    def close_session(self, session_id: str) -> None:
        with self._lock:
            if self._sessions.pop(session_id, None) is None:
                raise ServiceError(f"unknown session {session_id!r}")

    @property
    def sessions(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._sessions)

    # -- the serving interface -----------------------------------------------------
    def with_session(self, session_id: str,
                     fn: Callable[[DrillSession], R]) -> tuple[R, int]:
        """Run ``fn(session)`` under snapshot isolation.

        The dataset's read lock is held for the whole call (no ingest
        can interleave), and requests for the same session id serialize
        on the session's own lock. Returns ``(result, data_version)``
        where the version is the one every aggregate ``fn`` touched was
        served at — read while the lock is still held, so it cannot be
        bumped between computing the result and reporting it.
        """
        dataset, session = self._session_entry(session_id)
        with self.locks.read(dataset):
            with session.lock:
                result = fn(session)
                return result, session.data_version

    def recommend(self, session_id: str, complaint: Complaint,
                  k: int | None = None) -> Recommendation:
        """Recommend the next drill-down for one session (timed)."""
        start = time.perf_counter()
        recommendation, _ = self.with_session(
            session_id, lambda session: session.recommend(complaint, k=k))
        elapsed = time.perf_counter() - start
        with self._lock:
            self._recommend_count += 1
            self._recommend_seconds += elapsed
        return recommendation

    def drill(self, session_id: str, hierarchy: str,
              coordinates: Mapping | None = None) -> DrillSession:
        """Commit a drill-down on one session."""
        session, _ = self.with_session(
            session_id,
            lambda session: session.drill(hierarchy, coordinates))
        return session

    def submit_batch(self, dataset: str,
                     requests: Sequence[ComplaintRequest]) -> BatchResult:
        """Answer many independent complaints in one pass.

        Requests are grouped by their (group-by, filters) view; each
        distinct view gets a single throwaway session, and the view's
        complaints run consecutively against it so the roll-up and the
        per-statistic model fits happen once per view — every complaint
        after the first is answered from the shared cache. Results come
        back in request order. The whole batch runs under one hold of
        the dataset's read lock, so every item is answered at the single
        ``data_version`` reported on the result.
        """
        engine = self.engine(dataset)
        with self.locks.read(dataset):
            return self._submit_batch_locked(engine, dataset, requests)

    def _submit_batch_locked(self, engine: Reptile, dataset: str,
                             requests: Sequence[ComplaintRequest]
                             ) -> BatchResult:
        start = time.perf_counter()
        by_view: dict[tuple, list[int]] = {}
        items: list[BatchItem | None] = [None] * len(requests)
        executed = 0
        for i, request in enumerate(requests):
            try:
                # Construction or hashing raises on unhashable/unsortable
                # filter values; isolate such requests from the batch.
                by_view.setdefault(request.view_key(), []).append(i)
            except TypeError as exc:
                items[i] = BatchItem(request, None, 0.0,
                                     error=f"TypeError: {exc}")
        for view_key, indices in by_view.items():
            first = requests[indices[0]]
            try:
                session = engine.session(first.group_by, dict(first.filters))
            except Exception as exc:  # the whole view is unanswerable
                for i in indices:
                    items[i] = BatchItem(requests[i], None, 0.0,
                                         error=f"{type(exc).__name__}: {exc}")
                continue
            for i in indices:
                request = requests[i]
                executed += 1
                t0 = time.perf_counter()
                try:
                    recommendation = session.recommend(request.complaint,
                                                       k=request.k)
                    items[i] = BatchItem(request, recommendation,
                                         time.perf_counter() - t0)
                except Exception as exc:  # isolate the failing request
                    items[i] = BatchItem(request, None,
                                         time.perf_counter() - t0,
                                         error=f"{type(exc).__name__}: {exc}")
        with self._lock:
            self._recommend_count += executed
            self._recommend_seconds += time.perf_counter() - start
        return BatchResult(items=list(items),  # type: ignore[arg-type]
                           total_seconds=time.perf_counter() - start,
                           n_views=len(by_view),
                           data_version=engine.data_version)

    # -- maintenance ---------------------------------------------------------------
    def ingest(self, dataset: str, rows: Sequence = (),
               retract: Sequence = ()) -> dict:
        """Apply an append/retract delta to a registered dataset.

        The incremental counterpart of :meth:`invalidate`: the delta is
        threaded through the relation, the cube, the hierarchy paths and
        the shared cache (entries are patched or retained under the new
        versioned fingerprint, not dropped), and every open session of
        the dataset fast-forwards — or, under a strict staleness policy,
        raises until explicitly synced — instead of silently serving
        pre-delta aggregates. Returns a summary with the new
        ``data_version`` and the cache patch counters.

        Failure semantics: a validation failure (:class:`DeltaError` —
        the *request* is wrong) propagates unchanged with nothing
        mutated. Any other failure is infrastructure: the engine has
        rolled back to the last good snapshot, the dataset is marked
        degraded (background rebuild restores health), and
        :class:`~repro.serving.health.IngestFailure` reports the
        ``data_version`` still being served.
        """
        engine = self.engine(dataset)
        delta = Delta.from_rows(engine.dataset.relation.schema,
                                rows, retract)
        # Exclusive write: every in-flight read of this dataset drains
        # before the delta lands, and no read starts until it has.
        with self.locks.write(dataset):
            before = self.cache.stats
            patches_before = list(getattr(engine.cube, "shard_patches", ()))
            try:
                version = engine.apply_delta(delta)
            except DeltaError:
                raise  # a bad request, not a sick dataset
            except Exception as exc:
                self._degrade(dataset, exc)
                raise IngestFailure(dataset, engine.data_version,
                                    exc) from exc
            self._bump_sessions(dataset)
            self.health.mark_healthy(
                dataset, version, recovered=self.health.is_degraded(dataset))
            after = self.cache.stats
            summary = {
                "dataset": dataset,
                "version": version,
                "appended": len(delta.appended),
                "retracted": len(delta.retracted),
                "cache_patched": after.patched - before.patched,
                "cache_retained": after.retained - before.retained,
            }
            patches_after = list(getattr(engine.cube, "shard_patches", ()))
            if patches_after:
                # Sharded engine: which shard blocks this delta touched —
                # the locality evidence (owning-shard routing) per batch.
                summary["shards_touched"] = [
                    s for s, (a, b) in enumerate(zip(patches_before,
                                                     patches_after))
                    if b > a]
            return summary

    def _bump_sessions(self, dataset: str) -> None:
        """Fast-forward the dataset's open auto-sync sessions now.

        Strict-policy sessions are deliberately left stale — their next
        request raises ``StaleDataError`` until the owner calls
        ``sync()`` — so a data change can never be silently mixed into
        an in-flight strict analysis. Called with the dataset's write
        lock held: the sessions being bumped cannot be serving a read.
        """
        with self._lock:
            entries = list(self._sessions.items())
        for name, (owner, session) in entries:
            if owner == dataset and session.staleness == "sync":
                session.sync()

    # -- degraded mode & recovery --------------------------------------------------
    def _degrade(self, dataset: str, exc: BaseException) -> None:
        """Record a maintenance failure; kick off background recovery."""
        self.health.mark_failed(dataset, exc)
        if self.auto_rebuild:
            self._spawn_rebuild(dataset)

    def try_rebuild(self, dataset: str) -> bool:
        """One synchronous recovery attempt; True when healthy again.

        Rebuilds the engine wholesale from its (consistent, last-good)
        relation under the write lock — the same full-invalidation path
        as :meth:`invalidate` — and returns the dataset to ``healthy``.
        A failure (the ``serving.rebuild`` fault point included) pushes
        the next attempt further out on the backoff schedule. Called by
        the background rebuild loop, and directly by tests.
        """
        engine = self.engine(dataset)
        self.health.mark_rebuilding(dataset)
        try:
            fault_point("serving.rebuild", dataset=dataset)
            with self.locks.write(dataset):
                old_fingerprint = engine.fingerprint
                engine.refresh()
                if old_fingerprint is not None:
                    self.cache.invalidate(old_fingerprint)
                self._bump_sessions(dataset)
        except Exception as exc:
            self.health.mark_failed(dataset, exc)
            return False
        self.health.mark_healthy(dataset, engine.data_version,
                                 recovered=True)
        return True

    def _spawn_rebuild(self, dataset: str) -> None:
        """Start (at most) one background rebuild thread per dataset."""
        with self._lock:
            thread = self._rebuilders.get(dataset)
            if thread is not None and thread.is_alive():
                return
            thread = threading.Thread(target=self._rebuild_loop,
                                      args=(dataset,), daemon=True,
                                      name=f"reptile-rebuild-{dataset}")
            self._rebuilders[dataset] = thread
            thread.start()

    def _rebuild_loop(self, dataset: str) -> None:
        """Retry recovery on the backoff schedule until healthy.

        Reads keep flowing the whole time (the rebuild itself takes the
        write lock only briefly inside :meth:`try_rebuild`); the loop
        exits as soon as the dataset is healthy — including when a later
        successful ingest restored it first.
        """
        while self.health.is_degraded(dataset):
            delay = self.health.retry_delay(dataset)
            if delay > 0:
                self._rebuild_sleep(delay)
            if not self.health.is_degraded(dataset):
                break
            self.try_rebuild(dataset)

    def invalidate(self, dataset: str | None = None) -> int:
        """Flush cached state after data changed; returns entries dropped.

        Refreshes the named engine (or all engines) against its mutated
        dataset, drops the old fingerprint's cache entries, and
        version-bumps the open sessions of the affected datasets so none
        can keep serving pre-mutation aggregates (the auto-sync ones
        fast-forward immediately; strict ones raise until synced). Each
        dataset is refreshed under its *write* lock, so in-flight reads
        drain first and no request can observe the engine mid-refresh.
        """
        with self._lock:
            names = [dataset] if dataset is not None else list(self._engines)
        removed = 0
        for name in names:
            engine = self.engine(name)
            with self.locks.write(name):
                old_fingerprint = engine.fingerprint
                try:
                    # refresh() bumps the engine's data version; sessions
                    # must not stay pinned to the pre-mutation state.
                    engine.refresh()
                except Exception as exc:
                    # Same degraded-mode contract as ingest: reads keep
                    # serving, recovery rebuilds in the background.
                    self._degrade(name, exc)
                    raise IngestFailure(name, engine.data_version,
                                        exc) from exc
                if old_fingerprint is not None:
                    removed += self.cache.invalidate(old_fingerprint)
                self._bump_sessions(name)
                self.health.mark_healthy(name, engine.data_version)
        return removed

    # -- monitoring ----------------------------------------------------------------
    def stats(self) -> dict:
        """Operational counters: cache behaviour, timings, populations.

        ``ranker`` reports how many scoring sweeps ran on the vectorized
        array path versus the group-at-a-time fallback. The counters are
        process-wide (shared across services in one process, not reset
        between requests). A non-zero fallback count means some sweeps
        could not run vectorized — either a repairer produced predictions
        the array sweep cannot replay, or NaN predictions forced the
        reference ordering path.

        ``kernels`` reports the fused-kernel tier: the active backend
        name (``plain``/``numpy``/``numba``, or ``unresolved`` before the
        first dispatch) and per-kernel fused/fallback dispatch counts —
        a fallback is a call whose guard dropped it to the plain tier.
        """
        from .. import kernels
        from ..core.ranker import RANKER_STATS
        cache_stats = self.cache.stats
        sharding = {}
        with self._lock:
            engines = list(self._engines.items())
        for name, engine in engines:
            sharder = getattr(engine, "sharder", None)
            if sharder is not None:
                sharding[name] = {
                    "n_parts": sharder.n_parts,
                    "spill_dir": sharder.spill_dir,
                    "stages": sharder.utilization(),
                }
        return {
            "sharding": sharding,
            "ranker": dict(RANKER_STATS),
            "kernels": kernels.kernel_stats(),
            "cache": {
                "entries": len(self.cache),
                "max_entries": self.cache.max_entries,
                "hits": cache_stats.hits,
                "misses": cache_stats.misses,
                "evictions": cache_stats.evictions,
                "invalidations": cache_stats.invalidations,
                "patched": cache_stats.patched,
                "retained": cache_stats.retained,
                "hit_rate": cache_stats.hit_rate,
            },
            "stages": {kind: {"computations": t.computations,
                              "seconds": t.seconds}
                       for kind, t in self.cache.timings().items()},
            "recommend": {"count": self._recommend_count,
                          "seconds": self._recommend_seconds},
            "engines": len(self._engines),
            "sessions": len(self._sessions),
            "health": self.health.snapshot(),
        }

    def __repr__(self) -> str:
        return (f"ExplanationService(datasets={list(self._engines)}, "
                f"sessions={len(self._sessions)}, cache={self.cache!r})")
