"""Concurrency primitives for the multi-tenant serving front end.

Everything the HTTP server needs to let many analysts query and ingest
against shared datasets simultaneously, built on the stdlib only:

* :class:`ReadWriteLock` / :class:`DatasetLocks` — per-dataset
  reader/writer locks. ``recommend``/``drill``/``view`` hold a shared
  read lock, so they run concurrently *and* under snapshot isolation:
  while any request is in flight, ``ingest``/``refresh`` (exclusive
  writers) cannot move the engine's ``data_version`` under it, so every
  aggregate in one response comes from a single version. Writers are
  preferred — a waiting writer blocks new readers — so a stream of
  cheap reads cannot starve ingestion.
* :class:`BatchWindow` — cross-request batching. The in-process service
  already collapses same-view complaints inside one batch; this extends
  the idea across concurrent requests: the first request for a
  (dataset, view) key becomes the *leader*, waits a short window for
  followers, and answers the whole group in one cube/ranker pass.
* :class:`AdmissionController` — a bounded worker pool plus a bounded
  wait queue. Requests beyond the pool wait briefly; requests beyond
  the queue (or waiting too long) are rejected with a Retry-After hint
  so overload degrades with backpressure instead of collapse.
* :class:`LatencyStats` / :class:`Telemetry` — per-endpoint request
  counts and latency quantiles (p50/p99), served at ``/stats``.
* :func:`trace` — named trace points at every lock boundary. Tests
  install a hook (see the ``race`` fixture in ``tests/conftest.py``)
  to pin thread interleavings deterministically; in production the
  hook is ``None`` and the call is a dict lookup away from free.
"""

from __future__ import annotations

import bisect
import threading
import time
from contextlib import contextmanager
from typing import Callable, Hashable, Iterator

__all__ = [
    "LockTimeout", "ReadWriteLock", "DatasetLocks", "BatchWindow",
    "AdmissionController", "ServerOverloaded", "RequestTimeout",
    "LatencyStats", "Telemetry", "set_trace_hook", "trace",
]


# -- trace points ----------------------------------------------------------------
#: Installed test hook, or None. Called as ``hook(point, **info)`` from
#: the exact places a thread crosses a lock boundary; a hook that blocks
#: holds the calling thread *at* that boundary, which is how the
#: deterministic race harness pins interleavings.
_TRACE_HOOK: Callable | None = None
_TRACE_HOOK_LOCK = threading.Lock()


def set_trace_hook(hook: Callable | None) -> Callable | None:
    """Install (or clear, with None) the trace hook; returns the old one."""
    global _TRACE_HOOK
    with _TRACE_HOOK_LOCK:
        old, _TRACE_HOOK = _TRACE_HOOK, hook
        return old


def trace(point: str, **info) -> None:
    """Report crossing a named concurrency boundary to the test hook.

    Must never be called while holding an internal condition/lock of the
    caller — a blocking hook would deadlock the primitive itself.
    """
    hook = _TRACE_HOOK
    if hook is not None:
        hook(point, **info)


# -- reader/writer locks ---------------------------------------------------------
class LockTimeout(RuntimeError):
    """A lock acquisition exceeded its deadline (deadlock guard)."""


class ReadWriteLock:
    """A writer-preferred shared/exclusive lock.

    Any number of readers may hold the lock together; a writer holds it
    alone. A *waiting* writer blocks new readers (writer preference), so
    ingestion cannot starve behind a continuous stream of reads. The
    lock is not reentrant — exactly one layer of the serving stack (the
    :class:`~repro.serving.service.ExplanationService` methods) acquires
    it, never nested.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- shared (read) side ------------------------------------------------------
    def acquire_read(self, timeout: float | None = None) -> None:
        trace("rw.read_wait", lock=self.name)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._writer_active or self._writers_waiting:
                if not self._wait(deadline):
                    raise LockTimeout(
                        f"read lock on {self.name!r} timed out")
            self._readers += 1
        trace("rw.read_acquired", lock=self.name)

    def release_read(self) -> None:
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError(
                    f"release_read on {self.name!r} without a reader")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()
        trace("rw.read_released", lock=self.name)

    # -- exclusive (write) side --------------------------------------------------
    def acquire_write(self, timeout: float | None = None) -> None:
        trace("rw.write_wait", lock=self.name)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    if not self._wait(deadline):
                        raise LockTimeout(
                            f"write lock on {self.name!r} timed out")
                self._writer_active = True
            finally:
                self._writers_waiting -= 1
        trace("rw.write_acquired", lock=self.name)

    def release_write(self) -> None:
        with self._cond:
            if not self._writer_active:
                raise RuntimeError(
                    f"release_write on {self.name!r} without the writer")
            self._writer_active = False
            self._cond.notify_all()
        trace("rw.write_released", lock=self.name)

    def _wait(self, deadline: float | None) -> bool:
        if deadline is None:
            self._cond.wait()
            return True
        remaining = deadline - time.monotonic()
        return remaining > 0 and self._cond.wait(remaining)

    # -- observability (tests poll these to sequence interleavings) --------------
    @property
    def readers(self) -> int:
        with self._cond:
            return self._readers

    @property
    def writer_active(self) -> bool:
        with self._cond:
            return self._writer_active

    @property
    def writers_waiting(self) -> int:
        with self._cond:
            return self._writers_waiting

    @contextmanager
    def read(self, timeout: float | None = None) -> Iterator[None]:
        self.acquire_read(timeout)
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self, timeout: float | None = None) -> Iterator[None]:
        self.acquire_write(timeout)
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:
        with self._cond:
            return (f"ReadWriteLock({self.name!r}, readers={self._readers}, "
                    f"writer={self._writer_active}, "
                    f"waiting_writers={self._writers_waiting})")


class DatasetLocks:
    """One :class:`ReadWriteLock` per registered dataset, created lazily.

    Locks are only ever created, never removed — a dataset name maps to
    the same lock object for the life of the service, so two requests
    can never acquire different locks for one dataset.
    """

    def __init__(self):
        self._locks: dict[str, ReadWriteLock] = {}
        self._registry_lock = threading.Lock()

    def for_dataset(self, name: str) -> ReadWriteLock:
        with self._registry_lock:
            lock = self._locks.get(name)
            if lock is None:
                lock = self._locks[name] = ReadWriteLock(name)
            return lock

    def read(self, name: str, timeout: float | None = None):
        """Context manager: shared access to one dataset."""
        return self.for_dataset(name).read(timeout)

    def write(self, name: str, timeout: float | None = None):
        """Context manager: exclusive access to one dataset."""
        return self.for_dataset(name).write(timeout)


# -- cross-request batching ------------------------------------------------------
class _PendingBatch:
    """One open batching window: the leader's collection of requests."""

    __slots__ = ("items", "results", "error", "done", "closed")

    def __init__(self):
        self.items: list = []
        self.results: list | None = None
        self.error: BaseException | None = None
        self.done = threading.Event()
        self.closed = False


class BatchWindow:
    """Coalesce concurrent same-key requests into one evaluation pass.

    The first thread to arrive for a key becomes the *leader*: it keeps
    the window open for ``window_seconds``, then runs ``execute`` once
    over every item that joined and hands each caller its own result.
    Followers block on the leader's pass instead of paying their own.
    ``execute`` receives the item list and must return one result per
    item, in order; per-item failures belong *inside* the results (the
    serving layer passes result-or-error records through), while an
    exception from ``execute`` itself is re-raised to every caller.
    """

    def __init__(self, window_seconds: float = 0.005,
                 sleep: Callable[[float], None] = time.sleep):
        if window_seconds < 0:
            raise ValueError("window_seconds must be >= 0")
        self.window_seconds = window_seconds
        self._sleep = sleep
        self._lock = threading.Lock()
        self._pending: dict[Hashable, _PendingBatch] = {}
        #: Telemetry: evaluation passes run, and requests answered from a
        #: pass some *other* request led (the cross-request savings).
        self.passes = 0
        self.collapsed = 0

    def run(self, key: Hashable, item, execute: Callable[[list], list],
            timeout: float | None = 60.0):
        with self._lock:
            pending = self._pending.get(key)
            if pending is not None and not pending.closed:
                index = len(pending.items)
                pending.items.append(item)
                leader = False
            else:
                pending = _PendingBatch()
                pending.items.append(item)
                self._pending[key] = pending
                index, leader = 0, True
        if leader:
            trace("batch.window_open", key=key)
            if self.window_seconds > 0:
                self._sleep(self.window_seconds)
            with self._lock:
                pending.closed = True
                if self._pending.get(key) is pending:
                    del self._pending[key]
                items = list(pending.items)
                self.passes += 1
                self.collapsed += len(items) - 1
            trace("batch.execute", key=key, n=len(items))
            try:
                results = execute(items)
                if len(results) != len(items):
                    raise RuntimeError(
                        f"batch execute returned {len(results)} results "
                        f"for {len(items)} items")
                pending.results = results
            except BaseException as exc:
                pending.error = exc
            finally:
                pending.done.set()
        else:
            trace("batch.joined", key=key)
            if not pending.done.wait(timeout):
                raise LockTimeout(
                    f"batched request for {key!r} timed out waiting for "
                    f"its leader")
        if pending.error is not None:
            raise pending.error
        assert pending.results is not None
        return pending.results[index]

    def stats(self) -> dict:
        with self._lock:
            served = self.passes + self.collapsed
            return {
                "passes": self.passes,
                "collapsed": self.collapsed,
                "collapse_ratio": (self.collapsed / served) if served else 0.0,
                "window_seconds": self.window_seconds,
            }


# -- admission control -----------------------------------------------------------
class ServerOverloaded(RuntimeError):
    """The server is saturated; retry after ``retry_after`` seconds.

    ``status`` is the HTTP status the front end should answer with:
    429 when the wait queue is full (too many requests outstanding),
    503 when a queued request timed out or the server is draining.
    """

    def __init__(self, message: str, retry_after: float = 1.0,
                 status: int = 429):
        super().__init__(message)
        self.retry_after = retry_after
        self.status = status


class RequestTimeout(ServerOverloaded):
    """A request ran past the server's per-request deadline.

    Mapped to 503 + ``Retry-After`` like any overload: the admission
    slot is released immediately, so a runaway recommend cannot pin a
    worker slot for the rest of its (abandoned) computation.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message, retry_after=retry_after, status=503)


class AdmissionController:
    """A bounded worker pool with a bounded wait queue.

    At most ``max_concurrent`` requests execute at once; up to
    ``max_queue`` more wait (``queue_timeout`` seconds at most) for a
    slot. Anything beyond that is rejected immediately — the overload
    answer is cheap by design, so a saturated server stays responsive
    enough to shed load.
    """

    def __init__(self, max_concurrent: int = 8, max_queue: int = 32,
                 queue_timeout: float = 2.0):
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.queue_timeout = queue_timeout
        self._cond = threading.Condition()
        self._active = 0
        self._queued = 0
        self.rejected = 0
        self.timed_out = 0
        self.admitted = 0

    def retry_after(self) -> float:
        """A coarse client backoff hint, never below one second."""
        with self._cond:
            backlog = self._queued + max(0, self._active - self.max_concurrent)
        return max(1.0, round(0.1 * (backlog + 1), 1))

    def try_enter(self) -> None:
        """Claim an execution slot or raise :class:`ServerOverloaded`."""
        with self._cond:
            if self._active < self.max_concurrent:
                self._active += 1
                self.admitted += 1
                return
            if self._queued >= self.max_queue:
                self.rejected += 1
                raise ServerOverloaded(
                    f"{self._active} active and {self._queued} queued "
                    f"requests; queue limit {self.max_queue} reached",
                    retry_after=self._retry_after_locked(), status=429)
            self._queued += 1
        trace("admission.queued")
        deadline = time.monotonic() + self.queue_timeout
        with self._cond:
            try:
                while self._active >= self.max_concurrent:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        self.timed_out += 1
                        raise ServerOverloaded(
                            f"queued for {self.queue_timeout}s without a "
                            f"free worker",
                            retry_after=self._retry_after_locked(),
                            status=503)
                self._active += 1
                self.admitted += 1
            finally:
                self._queued -= 1

    def leave(self) -> None:
        with self._cond:
            if self._active <= 0:
                raise RuntimeError("leave() without a matching try_enter()")
            self._active -= 1
            self._cond.notify()

    def _retry_after_locked(self) -> float:
        backlog = self._queued + max(0, self._active - self.max_concurrent)
        return max(1.0, round(0.1 * (backlog + 1), 1))

    @contextmanager
    def admit(self) -> Iterator[None]:
        self.try_enter()
        try:
            yield
        finally:
            self.leave()

    def stats(self) -> dict:
        with self._cond:
            return {
                "max_concurrent": self.max_concurrent,
                "max_queue": self.max_queue,
                "active": self._active,
                "queued": self._queued,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "timed_out": self.timed_out,
            }


# -- latency telemetry -----------------------------------------------------------
class LatencyStats:
    """Latency quantiles over a bounded sample reservoir.

    Samples are kept sorted (insertion is O(log n) search + O(n) move on
    a small array), capped at ``max_samples``; beyond the cap, a random
    ring position is replaced so the reservoir stays representative of
    the whole run without unbounded memory.
    """

    def __init__(self, max_samples: int = 2048):
        self.max_samples = max_samples
        self._sorted: list[float] = []
        self.count = 0
        self.total_seconds = 0.0
        self._lock = threading.Lock()
        self._seed = 0x9E3779B9

    def record(self, seconds: float) -> None:
        with self._lock:
            self.count += 1
            self.total_seconds += seconds
            if len(self._sorted) >= self.max_samples:
                # xorshift step: cheap deterministic pseudo-random victim.
                self._seed ^= (self._seed << 13) & 0xFFFFFFFF
                self._seed ^= self._seed >> 17
                self._seed ^= (self._seed << 5) & 0xFFFFFFFF
                del self._sorted[self._seed % len(self._sorted)]
            bisect.insort(self._sorted, seconds)

    def percentile(self, p: float) -> float:
        """The p-th percentile (0..100) of the recorded samples, or 0.0."""
        with self._lock:
            if not self._sorted:
                return 0.0
            rank = max(0, min(len(self._sorted) - 1,
                              int(round(p / 100.0 * (len(self._sorted) - 1)))))
            return self._sorted[rank]

    def snapshot(self) -> dict:
        with self._lock:
            n = len(self._sorted)
            if n == 0:
                return {"count": self.count, "mean_seconds": 0.0,
                        "p50_seconds": 0.0, "p99_seconds": 0.0}
            return {
                "count": self.count,
                "mean_seconds": self.total_seconds / self.count,
                "p50_seconds": self._sorted[int(round(0.50 * (n - 1)))],
                "p99_seconds": self._sorted[int(round(0.99 * (n - 1)))],
            }


class Telemetry:
    """Per-endpoint request counters and latency quantiles."""

    def __init__(self):
        self._lock = threading.Lock()
        self._endpoints: dict[str, LatencyStats] = {}
        self._errors: dict[str, int] = {}

    def _stats_for(self, endpoint: str) -> LatencyStats:
        with self._lock:
            stats = self._endpoints.get(endpoint)
            if stats is None:
                stats = self._endpoints[endpoint] = LatencyStats()
            return stats

    def record(self, endpoint: str, seconds: float,
               error: bool = False) -> None:
        self._stats_for(endpoint).record(seconds)
        if error:
            with self._lock:
                self._errors[endpoint] = self._errors.get(endpoint, 0) + 1

    @contextmanager
    def timed(self, endpoint: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        except BaseException:
            self.record(endpoint, time.perf_counter() - start, error=True)
            raise
        self.record(endpoint, time.perf_counter() - start)

    def snapshot(self) -> dict:
        with self._lock:
            endpoints = dict(self._endpoints)
            errors = dict(self._errors)
        out = {}
        for endpoint, stats in sorted(endpoints.items()):
            row = stats.snapshot()
            row["errors"] = errors.get(endpoint, 0)
            out[endpoint] = row
        return out
