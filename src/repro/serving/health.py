"""Per-dataset health tracking for degraded-mode serving.

The serving stack's availability contract: a failed ingest or rebuild
never takes reads down. :class:`~repro.core.session.Reptile.apply_delta`
already rolls a failed delta back to the last good snapshot; this module
adds the bookkeeping layer on top — which datasets are currently serving
that stale-but-consistent snapshot, why, and when recovery should be
retried. Each dataset moves through a three-state machine::

    healthy ──failure──▶ degraded ──retry due──▶ rebuilding
       ▲                    ▲                        │
       │                    └──────failure───────────┤
       └──────────────────success────────────────────┘

* ``healthy`` — serving live data; ``data_version`` is the last version
  a successful commit or rebuild produced.
* ``degraded`` — a maintenance operation failed; reads keep serving the
  last good snapshot and responses carry ``degraded: true`` plus the
  snapshot's ``data_version``. The next recovery attempt is due at
  ``retry_at`` (capped exponential backoff in ``consecutive_failures``).
* ``rebuilding`` — a recovery rebuild is in flight; still serving the
  snapshot, still marked degraded to clients.

:class:`HealthRegistry` is the thread-safe collection the
:class:`~repro.serving.service.ExplanationService` owns; `/healthz`
serializes :meth:`HealthRegistry.snapshot` verbatim.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["DatasetHealth", "HealthRegistry", "IngestFailure",
           "HEALTHY", "DEGRADED", "REBUILDING"]

HEALTHY = "healthy"
DEGRADED = "degraded"
REBUILDING = "rebuilding"


class IngestFailure(RuntimeError):
    """An infrastructure failure during ingest/refresh, after rollback.

    Raised *instead of* the original exception for failures that are the
    service's fault rather than the request's (a crashed worker, a
    failed cache patch, an injected fault). The dataset stays up on its
    last good snapshot: ``data_version`` is the version still being
    served, so the HTTP layer can answer 503 + ``degraded: true`` with
    the snapshot marker instead of a raw 500.
    """

    def __init__(self, dataset: str, data_version: int,
                 cause: BaseException):
        super().__init__(
            f"ingest into {dataset!r} failed "
            f"({type(cause).__name__}: {cause}); still serving data "
            f"version {data_version}")
        self.dataset = dataset
        self.data_version = data_version
        self.cause = cause


@dataclass
class DatasetHealth:
    """One dataset's position in the health state machine."""

    dataset: str
    state: str = HEALTHY
    data_version: int = 0          # last version known good
    consecutive_failures: int = 0
    last_error: str | None = None
    last_error_at: float | None = None  # epoch seconds, for operators
    retry_at: float = 0.0          # monotonic deadline for next rebuild
    rebuilds: int = 0              # successful recoveries

    def payload(self) -> dict:
        """The JSON shape served at ``/healthz``."""
        return {
            "state": self.state,
            "data_version": self.data_version,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
            "last_error_at": self.last_error_at,
            "rebuilds": self.rebuilds,
        }


@dataclass
class HealthRegistry:
    """Thread-safe per-dataset health states with failure backoff."""

    backoff_base: float = 0.25
    backoff_cap: float = 30.0
    clock: object = time.monotonic  # injectable in tests
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)
    _states: dict = field(default_factory=dict, repr=False)

    def for_dataset(self, name: str) -> DatasetHealth:
        with self._lock:
            state = self._states.get(name)
            if state is None:
                state = self._states[name] = DatasetHealth(name)
            return state

    def mark_healthy(self, name: str, data_version: int,
                     *, recovered: bool = False) -> DatasetHealth:
        """A commit or rebuild succeeded: back to ``healthy``."""
        state = self.for_dataset(name)
        with self._lock:
            state.state = HEALTHY
            state.data_version = int(data_version)
            state.consecutive_failures = 0
            state.retry_at = 0.0
            if recovered:
                state.rebuilds += 1
            return state

    def mark_failed(self, name: str, exc: BaseException) -> DatasetHealth:
        """A maintenance operation failed: ``degraded``, backoff grows."""
        state = self.for_dataset(name)
        with self._lock:
            state.state = DEGRADED
            state.consecutive_failures += 1
            state.last_error = f"{type(exc).__name__}: {exc}"
            state.last_error_at = time.time()
            delay = min(self.backoff_cap,
                        self.backoff_base
                        * 2 ** (state.consecutive_failures - 1))
            state.retry_at = self.clock() + delay
            return state

    def mark_rebuilding(self, name: str) -> DatasetHealth:
        state = self.for_dataset(name)
        with self._lock:
            state.state = REBUILDING
            return state

    def is_degraded(self, name: str) -> bool:
        """Degraded *or* mid-rebuild: responses must carry the marker."""
        with self._lock:
            state = self._states.get(name)
            return state is not None and state.state != HEALTHY

    def retry_delay(self, name: str) -> float:
        """Seconds until the next rebuild attempt is due (>= 0)."""
        with self._lock:
            state = self._states.get(name)
            if state is None or state.state == HEALTHY:
                return 0.0
            return max(0.0, state.retry_at - self.clock())

    def snapshot(self) -> dict[str, dict]:
        with self._lock:
            return {name: state.payload()
                    for name, state in self._states.items()}
