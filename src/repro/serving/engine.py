"""Cache-backed wrappers for the engine's hot-path computations.

Two memoized layers make a warm :class:`~repro.core.session.Reptile`
fast:

* :class:`CachingCube` — group-by roll-ups. Every ``view()`` result is a
  pure function of (data, group attributes, filters); the wrapper keys it
  as ``("view", fingerprint, group_attrs, filters)`` so drill-down,
  parallel and provenance views are each rolled up once.
* :class:`CachingRepairer` — repair predictions. A prediction depends on
  the parallel view plus the repairer's configuration, *not* on the
  complaint coordinates, so every complaint against the same view (and
  every replay of a drill path) shares one model fit. Repairers whose
  configuration cannot be fingerprinted (custom callables) bypass the
  cache rather than risk a stale hit.

Both layers cache the *array-backed* objects of the recommend path: a
memoized :class:`~repro.relational.cube.GroupView` carries its
``GroupStats`` block plus encoded key codes, and a memoized
:class:`~repro.core.repair.RepairPrediction` is the
``(statistics, matrix)`` container — so every complaint batched against
the same view reuses one set of arrays end to end, and the array ranker
never rebuilds per-group dicts between requests.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.repair import ModelRepairer, RepairPrediction
from ..factorized.forder import HierarchyPaths
from ..factorized.multiquery import hierarchy_unit, merge_unit_delta
from ..model.features import (AuxiliaryFeature, CustomFeature, FeaturePlan,
                              LagFeature, MainEffectFeature)
from ..relational.cube import (Cube, CubeDelta, GroupView, StatesMap,
                               merge_stats_blocks)
from ..relational.dataset import HierarchicalDataset
from ..relational.encoding import combine_codes, decode_keys
from ..relational.shard import ShardedCube
from .cache import AggregateCache, dataset_fingerprint

#: Attribute attached to every GroupView a :class:`CachingCube` returns;
#: holds the view's full cache key so downstream caches can identify the
#: exact view (data fingerprint, group attributes *and* filters). Views
#: without it (built by a plain Cube) are opaque and bypass caching.
_VIEW_KEY_ATTR = "_serving_view_key"


def freeze_filters(filters: Mapping | None) -> tuple:
    """Filters as a hashable, order-insensitive cache-key component."""
    return tuple(sorted((filters or {}).items(), key=lambda kv: kv[0]))


def spec_signature(spec: object) -> tuple | None:
    """A hashable fingerprint of one feature spec, or None if opaque.

    Auxiliary features are identified by dataset name and measure — the
    registration is immutable (:class:`~repro.relational.dataset.AuxiliaryDataset`
    is frozen) and names are unique per dataset. Custom features embed
    arbitrary callables, so they cannot be fingerprinted.
    """
    if isinstance(spec, MainEffectFeature):
        return ("main", spec.attribute, spec.min_groups)
    if isinstance(spec, LagFeature):
        return ("lag", spec.attribute, spec.lag)
    if isinstance(spec, AuxiliaryFeature):
        return ("aux", spec.auxiliary.name, spec.measure)
    if isinstance(spec, CustomFeature):
        return None
    return None


def plan_signature(plan: FeaturePlan) -> tuple | None:
    """A hashable fingerprint of a feature plan, or None if opaque."""
    parts: list[tuple | str] = []
    for group in (plan.specs, plan.extra_specs):
        if group is None:
            parts.append("defaults")
            continue
        sigs = []
        for spec in group:
            sig = spec_signature(spec)
            if sig is None:
                return None
            sigs.append(sig)
        parts.append(tuple(sigs))
    return (tuple(parts), plan.intercept, plan.standardize,
            plan.random_effects)


def repairer_signature(repairer: object) -> tuple | None:
    """A hashable fingerprint of a repair function, or None if opaque."""
    if not isinstance(repairer, ModelRepairer):
        return None
    plan_sig = plan_signature(repairer.feature_plan)
    if plan_sig is None:
        return None
    return ("model-repairer", repairer.model, repairer.n_iterations,
            repairer.statistics, plan_sig)


class CachingViews(Cube):
    """Mixin: memoized roll-ups over any :class:`Cube`-shaped build.

    Subclasses combine it with a concrete cube (single-block or sharded);
    ``drilldown_view`` and ``parallel_view`` route through the overridden
    :meth:`view`, so the whole recommend path hits the cache. Call
    :meth:`refresh` after mutating the dataset in place.
    """

    cache: AggregateCache
    fingerprint: str

    def view(self, group_attrs: Sequence[str],
             filters: Mapping[str, object] | None = None) -> GroupView:
        key = ("view", self.fingerprint, tuple(group_attrs),
               freeze_filters(filters))
        view = self.cache.get_or_compute(
            key, lambda: Cube.view(self, group_attrs, filters))
        # GroupView is a frozen dataclass; tag it with its own cache key
        # so CachingRepairer can key predictions to this exact view.
        object.__setattr__(view, _VIEW_KEY_ATTR, key)
        return view

    def refresh(self) -> str:
        """Re-read the (mutated) dataset; returns the new fingerprint.

        One rebuild, one new fingerprint — a sharded rebuild included: the
        service holds the dataset's exclusive lock across this call, so
        readers only ever observe the pre- or post-rebuild version. Old
        entries stay keyed to the old fingerprint — harmless for
        correctness; reclaim them with ``cache.invalidate(old_fp)``.
        """
        self.rebuild()
        self.fingerprint = dataset_fingerprint(self.dataset, refresh=True)
        return self.fingerprint


class CachingCube(CachingViews, Cube):
    """The memoizing single-block cube (drop-in :class:`Cube`)."""

    def __init__(self, dataset: HierarchicalDataset, cache: AggregateCache,
                 fingerprint: str | None = None):
        Cube.__init__(self, dataset)
        self.cache = cache
        self.fingerprint = fingerprint or dataset_fingerprint(dataset)


class CachingShardedCube(CachingViews, ShardedCube):
    """The memoizing sharded cube: parallel builds, cached roll-ups."""

    def __init__(self, dataset: HierarchicalDataset, cache: AggregateCache,
                 fingerprint: str | None = None, *, n_shards: int = 2,
                 workers: int = 0, partition_attr: str | None = None,
                 spill_dir: str | None = None):
        ShardedCube.__init__(self, dataset, n_shards=n_shards,
                             workers=workers, partition_attr=partition_attr,
                             spill_dir=spill_dir)
        self.cache = cache
        self.fingerprint = fingerprint or dataset_fingerprint(dataset)


def patch_view(view: GroupView, cube_delta: CubeDelta,
               leaf_attrs: Sequence[str], group_attrs: tuple[str, ...],
               delta_mask: np.ndarray) -> GroupView | None:
    """Delta-merge a cached view in place of recomputing its roll-up.

    ``delta_mask`` selects the delta leaves passing the view's filters
    (the caller already applied them); they are rolled up to
    ``group_attrs`` and merged into the view's stats block with the same
    kernel the cube itself uses. Returns None when the view carries no
    array form (cannot be patched — drop it).
    """
    if view.key_codes is None or view.encodings is None:
        return None
    positions = [list(leaf_attrs).index(a) for a in group_attrs]
    encs = [cube_delta.encodings[p] for p in positions]
    sizes = [e.cardinality for e in encs]
    selected = np.flatnonzero(delta_mask)
    stats = cube_delta.stats.select(selected)
    gids, delta_codes = combine_codes(
        [cube_delta.key_codes[selected, p] for p in positions],
        sizes, len(selected))
    delta_stats = stats.merge_by(gids, len(delta_codes))
    old_stats = view.groups.stats if isinstance(view.groups, StatesMap) \
        else None
    if old_stats is None:
        return None
    merged_codes, merged_stats, kept, added, _ = merge_stats_blocks(
        view.key_codes, old_stats, delta_codes, delta_stats, sizes)
    old_keys = view.key_list
    keys = old_keys if kept is None else [old_keys[i] for i in kept]
    if len(added):
        keys = list(keys) + decode_keys(added, encs)
    return GroupView(group_attrs, StatesMap(keys, merged_stats),
                     key_codes=merged_codes, encodings=tuple(encs))


def patch_cache_for_delta(cache: AggregateCache, old_fp: str | None,
                          new_fp: str, cube_delta: CubeDelta,
                          leaf_attrs: Sequence[str],
                          touched: set[str],
                          old_paths: Mapping[str, HierarchyPaths],
                          new_paths: Mapping[str, HierarchyPaths]) -> None:
    """Carry one fingerprint generation of cache entries across a delta.

    Replaces wholesale invalidation: every entry keyed to ``old_fp`` is
    re-keyed under the new versioned fingerprint — *retained* as-is when
    the delta cannot have changed it, *patched* by a delta merge when it
    can, and dropped only when no incremental update exists (a model
    refit, a hierarchy that lost paths). LRU recency is preserved.
    """
    leaf_positions = {a: i for i, a in enumerate(leaf_attrs)}
    # Per touched hierarchy: the genuinely new full paths (append-only),
    # or None when paths were also removed (units cannot be patched).
    fresh_paths: dict[str, list[tuple] | None] = {}
    for name in touched:
        old = old_paths[name]
        known = set(old.paths)
        fresh = [p for p in new_paths[name].paths if p not in known]
        removed_any = len(new_paths[name].paths) != len(old.paths) + len(fresh)
        fresh_paths[name] = None if removed_any else fresh

    def view_mask(frozen_filters) -> np.ndarray:
        return cube_delta.matching_mask(
            [(leaf_positions[a], v) for a, v in frozen_filters
             if a in leaf_positions])

    patched = retained = dropped = 0
    for key, value in cache.pop_fingerprint(old_fp):
        kind = key[0] if isinstance(key, tuple) and key else None
        new_key = (kind, new_fp) + tuple(key[2:])
        if kind == "view":
            group_attrs, frozen_filters = key[2], key[3]
            mask = view_mask(frozen_filters)
            if not mask.any():
                fresh_view = value  # untouched: keep the very object
                retained += 1
            else:
                fresh_view = patch_view(value, cube_delta, leaf_attrs,
                                        group_attrs, mask)
                if fresh_view is None:
                    dropped += 1
                    continue
                patched += 1
            object.__setattr__(fresh_view, _VIEW_KEY_ATTR, new_key)
            cache.put(new_key, fresh_view)
        elif kind == "hunit":
            name, attributes = key[2], key[3]
            if name not in touched:
                cache.put(new_key, value)
                retained += 1
                continue
            fresh = fresh_paths[name]
            if fresh is None:  # paths were removed: no incremental form
                dropped += 1
                continue
            depth = len(attributes)
            old = old_paths[name]
            base = old.paths if depth == len(old.attributes) \
                else old.restrict(depth).paths
            added = {p[:depth] for p in fresh} - set(base)
            if not added:
                cache.put(new_key, value)
                retained += 1
                continue
            delta_unit = hierarchy_unit(
                HierarchyPaths(name, attributes, added))
            cache.put(new_key, merge_unit_delta(value, delta_unit))
            patched += 1
        elif kind == "predict":
            # key[3] is the view's (group_attrs, filters) suffix; a
            # prediction only depends on its view's contents, so it
            # survives exactly when that view is untouched.
            frozen_filters = key[3][1] if len(key) > 3 and len(key[3]) > 1 \
                else ()
            if view_mask(frozen_filters).any():
                dropped += 1  # the fit's inputs changed: recompute
                continue
            cache.put(new_key, value)
            retained += 1
        else:
            dropped += 1  # unknown kind: recompute rather than risk it
    cache.note_patched(patched, retained)


class CachingRepairer:
    """Wraps a repair function, memoizing whole-view predictions.

    The cache key covers everything a prediction depends on: the view's
    own cache key (dataset fingerprint + group attributes + filters, as
    tagged by :meth:`CachingCube.view`), the cluster attributes, the
    modelled statistics, and the inner repairer's configuration
    signature. A view carrying no tag (built by a plain ``Cube``) has
    unknown contents and bypasses the cache rather than risk aliasing
    two differently-filtered views.
    """

    def __init__(self, inner, cache: AggregateCache):
        self.inner = inner
        self.cache = cache

    def statistics_for(self, aggregate: str) -> tuple[str, ...]:
        return self.inner.statistics_for(aggregate)

    def predict(self, parallel: GroupView, cluster_attrs: Sequence[str],
                aggregate: str) -> RepairPrediction:
        signature = repairer_signature(self.inner)
        view_key = getattr(parallel, _VIEW_KEY_ATTR, None)
        if signature is None or view_key is None:
            return self.inner.predict(parallel, cluster_attrs, aggregate)
        # view_key[1] is the view's dataset fingerprint — kept as the
        # second element so invalidate(fingerprint) reaps these entries.
        key = ("predict", view_key[1], signature, view_key[2:],
               tuple(cluster_attrs), self.inner.statistics_for(aggregate))
        return self.cache.get_or_compute(
            key, lambda: self.inner.predict(parallel, cluster_attrs,
                                            aggregate))

    def __repr__(self) -> str:
        return f"CachingRepairer({self.inner!r})"
