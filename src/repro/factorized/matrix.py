"""The factorised feature matrix (§3.4, Appendix B).

A :class:`FactorizedMatrix` never stores its rows. It stores, per feature
column, the owning attribute and a value → feature mapping over that
attribute's ordered domain; the row structure lives entirely in the
:class:`AttributeOrder`. Matrix operations (gram, left/right
multiplication) are implemented in :mod:`repro.factorized.ops` and exposed
as methods here; :meth:`materialize` produces the dense matrix for the
"Lapack" baselines and for tests.

The attribute-matrix / feature-matrix split of Appendix B is captured by
the mapping: aggregation queries run over attribute *values*, and results
are translated to feature space through the per-column mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from .forder import AttributeOrder, FactorizationError


@dataclass(frozen=True)
class FeatureColumn:
    """One matrix column: a featurization of a single attribute.

    ``mapping`` sends every attribute value to a float (§3.3); a missing
    value falls back to ``default`` (0.0), which keeps auxiliary features
    with partial coverage usable. An *empty* mapping is a constant column
    (every value maps to ``default``) — the O(1)-memory representation of
    the intercept.
    """

    attribute: str
    name: str
    mapping: Mapping
    default: float = 0.0
    #: Memoized domain-indexed feature arrays, keyed on domain identity.
    _arrays: dict = field(default_factory=dict, init=False, repr=False,
                          compare=False)

    def feature_of(self, value) -> float:
        return float(self.mapping.get(value, self.default))

    def feature_array(self, domain: Sequence) -> np.ndarray:
        """Feature values over ``domain``, element ``k`` = domain value
        ``k``'s feature — bitwise what :meth:`feature_of` returns per
        element.

        Memoized per domain object (hierarchy domains are stable lists),
        so repeated matrix builds and cluster-table builds over the same
        structure are pure array gathers. Constant columns (empty
        mapping) skip the per-value loop entirely. The returned array is
        read-only — it is shared across callers.
        """
        key = id(domain)
        hit = self._arrays.get(key)
        if hit is not None and hit[0] is domain:
            return hit[1]
        if not self.mapping:
            arr = np.full(len(domain), float(self.default))
        else:
            mapping, default = self.mapping, self.default
            arr = np.asarray([float(mapping.get(v, default))
                              for v in domain], dtype=float)
        arr.setflags(write=False)
        self._arrays[key] = (domain, arr)
        return arr


def intercept_column(order: AttributeOrder, attribute: str | None = None
                     ) -> FeatureColumn:
    """An all-ones column attached to ``attribute`` (default: first attr).

    Represented as a constant column (empty mapping, ``default=1.0``)
    rather than a materialised ``{v: 1.0}`` dict — O(1) memory however
    large the domain, and :meth:`FeatureColumn.feature_array` short-cuts
    it to ``np.full``.
    """
    attribute = attribute or order.attributes[0]
    order.info(attribute)  # validates the attribute exists
    return FeatureColumn(attribute, "intercept", {}, default=1.0)


def multi_attribute_column(order: AttributeOrder, attributes: Sequence[str],
                           name: str, mapping: Mapping,
                           default: float = 0.0) -> FeatureColumn:
    """A multi-attribute feature (Appendix H) over one hierarchy's attrs.

    ``mapping`` sends tuples of the attributes' values (in the given
    order) to floats — e.g. an external dataset keyed on (district,
    village). Within a hierarchy the most specific attribute functionally
    determines its ancestors, so the feature reduces *exactly* to a
    single-attribute column on the deepest attribute; that reduction is
    what keeps every factorised operator applicable unchanged.

    Multi-attribute features spanning *different* hierarchies do not
    factorise (Appendix H's worst case: "no redundancy in the feature
    matrix... the same as the naive solution") and are supported by the
    dense path (:class:`repro.model.features.BuiltFeature`) instead;
    asking for them here raises.
    """
    attributes = list(attributes)
    if not attributes:
        raise FactorizationError("multi-attribute feature needs attributes")
    infos = [order.info(a) for a in attributes]
    hierarchy_indexes = {i.hierarchy_index for i in infos}
    if len(hierarchy_indexes) != 1:
        raise FactorizationError(
            f"attributes {attributes} span multiple hierarchies; "
            f"cross-hierarchy features do not factorise (Appendix H) — "
            f"use the dense path")
    h = order.hierarchies[infos[0].hierarchy_index]
    deepest = max(infos, key=lambda i: i.level)
    levels = [i.level for i in infos]
    composed: dict = {}
    for path in h.paths:
        key = tuple(path[level] for level in levels)
        composed[path[deepest.level]] = float(mapping.get(key, default))
    return FeatureColumn(deepest.name, name, composed, default=default)


class FactorizedMatrix:
    """Feature matrix in f-representation form.

    Parameters
    ----------
    order:
        Row structure (hierarchies, drill hierarchy last).
    columns:
        Feature columns; any attribute may carry several columns.
    """

    def __init__(self, order: AttributeOrder, columns: Sequence[FeatureColumn]):
        self.order = order
        self.columns: tuple[FeatureColumn, ...] = tuple(columns)
        if not self.columns:
            raise FactorizationError("matrix needs at least one column")
        for c in self.columns:
            order.info(c.attribute)  # validates the attribute exists
        # Per-column feature values over the attribute's ordered domain
        # (memoized in the column — repeated builds share the arrays).
        self._dom_features: list[np.ndarray] = [
            c.feature_array(order.ordered_domain(c.attribute))
            for c in self.columns]
        # Per-hierarchy leaf-expanded feature matrix: one row per leaf path,
        # one column per feature column owned by that hierarchy — a code
        # gather over the hierarchy's level encodings, no per-value calls.
        self._hier_cols: list[list[int]] = [[] for _ in order.hierarchies]
        for ci, c in enumerate(self.columns):
            self._hier_cols[order.info(c.attribute).hierarchy_index].append(ci)
        self._leaf_features: list[np.ndarray] = []
        for hi, h in enumerate(order.hierarchies):
            cols = self._hier_cols[hi]
            mat = np.empty((h.n_leaves, len(cols)))
            for k, ci in enumerate(cols):
                level = order.info(self.columns[ci].attribute).level
                col = self.columns[ci]
                mat[:, k] = col.feature_array(
                    h.level_domain(level))[h.level_codes(level)]
            self._leaf_features.append(mat)

    # -- shape ----------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.order.n_rows, len(self.columns))

    @property
    def n_rows(self) -> int:
        return self.order.n_rows

    @property
    def n_cols(self) -> int:
        return len(self.columns)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def column_indices(self, names: Sequence[str]) -> list[int]:
        """Positions of the named columns (for random-effect selection Z)."""
        index = {c.name: i for i, c in enumerate(self.columns)}
        try:
            return [index[n] for n in names]
        except KeyError as exc:
            raise FactorizationError(f"unknown column {exc.args[0]!r}") from None

    def domain_features(self, column_index: int) -> np.ndarray:
        """Feature values over the column's ordered attribute domain."""
        return self._dom_features[column_index]

    def hierarchy_columns(self, hierarchy_index: int) -> list[int]:
        """Column indices owned by one hierarchy."""
        return list(self._hier_cols[hierarchy_index])

    def leaf_features(self, hierarchy_index: int) -> np.ndarray:
        """(n_leaves × hierarchy columns) leaf-expanded feature block."""
        return self._leaf_features[hierarchy_index]

    # -- operations (implemented in repro.factorized.ops) ----------------------------
    def materialize(self) -> np.ndarray:
        from . import ops
        return ops.materialize(self)

    def gram(self) -> np.ndarray:
        from . import ops
        return ops.gram(self)

    def left_multiply(self, a: np.ndarray) -> np.ndarray:
        from . import ops
        return ops.left_multiply(self, a)

    def right_multiply(self, b: np.ndarray) -> np.ndarray:
        from . import ops
        return ops.right_multiply(self, b)

    def column_sums(self) -> np.ndarray:
        """``1ᵀ·X`` computed factorized (special case of left multiply)."""
        from . import ops
        return ops.column_sums(self)

    def select_columns(self, indices: Sequence[int]) -> "FactorizedMatrix":
        """Sub-matrix with the given columns (used to build Z from X)."""
        return FactorizedMatrix(self.order, [self.columns[i] for i in indices])

    def __repr__(self) -> str:
        return f"FactorizedMatrix(shape={self.shape})"
