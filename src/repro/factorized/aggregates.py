"""Decomposed count aggregates TOTAL, COUNT, COF (§4.2.1).

These three aggregate families fully describe the redundancy structure of
the factorised attribute matrix and are the building blocks of every matrix
operation:

* ``TOTAL_a``   — row count of the suffix matrix starting at attribute ``a``;
* ``COUNT_a``   — per-value counts inside that suffix;
* ``COF_{a,b}`` — pairwise co-occurrence counts for ``a`` before ``b``.

This module provides *closed-form* evaluation straight from the
:class:`AttributeOrder` structure (exploiting the FD tree within a
hierarchy and independence across hierarchies). The multi-query planner in
:mod:`repro.factorized.multiquery` computes the same results through the
paper's shared aggregation plan (Algorithm 10); tests assert they agree.

The key optimization of §4.2.2/§4.3 is embodied in :class:`CrossCOF`: when
``a`` and ``b`` live in different hierarchies their COF is a rank-1
cartesian product and is **never materialised** — callers consume the two
factor vectors and a scalar.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .forder import AttributeOrder, FactorizationError


@dataclass(frozen=True)
class CrossCOF:
    """Lazy rank-1 COF for attributes of *different* hierarchies.

    ``COF[v_a, v_b] = scale · left[v_a] · right[v_b]`` where the factor
    vectors are aligned with the attributes' ordered domains.
    """

    left_values: tuple
    left_counts: np.ndarray
    right_values: tuple
    right_counts: np.ndarray
    scale: float

    def __getitem__(self, pair: tuple) -> float:
        va, vb = pair
        try:
            i = self.left_values.index(va)
            j = self.right_values.index(vb)
        except ValueError:
            return 0.0
        return float(self.scale * self.left_counts[i] * self.right_counts[j])

    def materialize(self) -> dict[tuple, float]:
        """Explicit ``{(v_a, v_b): count}`` — quadratic; tests only."""
        out = {}
        for i, va in enumerate(self.left_values):
            for j, vb in enumerate(self.right_values):
                out[(va, vb)] = float(
                    self.scale * self.left_counts[i] * self.right_counts[j])
        return out

    def weighted_sum(self, f_left: np.ndarray, f_right: np.ndarray) -> float:
        """``Σ COF[v_a,v_b]·f_left[v_a]·f_right[v_b]`` without materialising."""
        return float(self.scale
                     * (self.left_counts @ f_left)
                     * (self.right_counts @ f_right))


@dataclass(frozen=True)
class PairCOF:
    """Materialised COF for attributes of the *same* hierarchy.

    Stored sparsely: only pairs on a common root-to-leaf path have nonzero
    counts (``b`` under ``a``), so the size is the domain of ``b``.
    """

    pairs: dict

    def __getitem__(self, pair: tuple) -> float:
        return float(self.pairs.get(tuple(pair), 0.0))

    def materialize(self) -> dict[tuple, float]:
        return dict(self.pairs)

    def weighted_sum(self, f_a: dict, f_b: dict) -> float:
        return float(sum(c * f_a[va] * f_b[vb]
                         for (va, vb), c in self.pairs.items()))


class DecomposedAggregates:
    """Closed-form TOTAL/COUNT/COF over an :class:`AttributeOrder`."""

    def __init__(self, order: AttributeOrder):
        self.order = order

    def total(self, attribute: str) -> float:
        return self.order.total(attribute)

    def grand_total(self) -> float:
        """TOTAL of the first attribute = number of matrix rows."""
        return float(self.order.n_rows)

    def count(self, attribute: str) -> dict:
        return self.order.count_map(attribute)

    def count_arrays(self, attribute: str) -> tuple[list, np.ndarray]:
        """(ordered domain, aligned suffix counts) for vectorised use."""
        return self.order.ordered_domain(attribute), self.order.counts(attribute)

    def cof(self, a: str, b: str) -> PairCOF | CrossCOF:
        """``COF_{a,b}`` with ``a`` strictly before ``b`` in attribute order."""
        ia, ib = self.order.info(a), self.order.info(b)
        if ia.position >= ib.position:
            raise FactorizationError(
                f"COF requires {a!r} before {b!r} in attribute order")
        if ia.hierarchy_index == ib.hierarchy_index:
            return self._same_hierarchy_cof(a, b)
        return self._cross_hierarchy_cof(a, b)

    def _same_hierarchy_cof(self, a: str, b: str) -> PairCOF:
        ia, ib = self.order.info(a), self.order.info(b)
        h = self.order.hierarchies[ia.hierarchy_index]
        after = self.order.leaf_product_after(ia.hierarchy_index)
        # Each leaf under (v_a, v_b) contributes `after` suffix rows; group
        # leaves by the (ancestor-at-level-a, value-at-level-b) pair.
        pairs: dict[tuple, float] = {}
        for path in h.paths:
            key = (path[ia.level], path[ib.level])
            pairs[key] = pairs.get(key, 0.0) + after
        return PairCOF(pairs)

    def _cross_hierarchy_cof(self, a: str, b: str) -> CrossCOF:
        ia, ib = self.order.info(a), self.order.info(b)
        # COF[v_a, v_b] counts suffix-from-a rows with both values fixed:
        #   leaves_within(v_a) · Π_{between} L_h · leaves_within(v_b) · Π_{after b} L_h
        between = 1.0
        for hi in range(ia.hierarchy_index + 1, ib.hierarchy_index):
            between *= self.order.hierarchies[hi].n_leaves
        after_b = self.order.leaf_product_after(ib.hierarchy_index)
        return CrossCOF(
            left_values=tuple(self.order.ordered_domain(a)),
            left_counts=self.order.counts_within(a),
            right_values=tuple(self.order.ordered_domain(b)),
            right_counts=self.order.counts_within(b),
            scale=float(between * after_b))

    def all_pairs(self) -> dict[tuple[str, str], PairCOF | CrossCOF]:
        """Every COF pair ``(a before b)`` — the quadratic family of §5.1.3."""
        attrs = self.order.attributes
        out: dict[tuple[str, str], PairCOF | CrossCOF] = {}
        for i, a in enumerate(attrs):
            for b in attrs[i + 1:]:
                out[(a, b)] = self.cof(a, b)
        return out
