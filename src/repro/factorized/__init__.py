"""Factorised representations: the paper's core machinery (§3.4, §4).

The factorised feature matrix, decomposed aggregates (TOTAL/COUNT/COF),
multi-query work-sharing plans, vectorized and reference matrix operations,
per-cluster operators for the multi-level model, and the drill-down
aggregate maintenance engine.
"""

from .aggregates import CrossCOF, DecomposedAggregates, PairCOF
from .cluster_ops import ClusterOps
from .drilldown import MODES, DrilldownEngine
from .factorizer import Factorizer, check_row_order
from .forder import (AttributeInfo, AttributeOrder, FactorizationError,
                     HierarchyPaths)
from .matrix import (FactorizedMatrix, FeatureColumn, intercept_column,
                     multi_attribute_column)
from .multiquery import (AggregateSet, HierarchyAggregates, combine_units,
                         hierarchy_unit, lmfao_plan, plan_units, shared_plan)
from .ops import (column_sums, gram, left_multiply, materialize,
                  right_multiply)
from .reference import (assert_aggregate_sets_equal, dict_path_matrix,
                        reference_gram, reference_hierarchy_unit,
                        reference_left_multiply, reference_lmfao_plan,
                        reference_right_multiply, reference_shared_plan)

__all__ = [
    "CrossCOF", "DecomposedAggregates", "PairCOF", "ClusterOps", "MODES",
    "DrilldownEngine", "Factorizer", "check_row_order", "AttributeInfo",
    "AttributeOrder", "FactorizationError", "HierarchyPaths",
    "FactorizedMatrix", "FeatureColumn", "intercept_column",
    "multi_attribute_column", "AggregateSet",
    "HierarchyAggregates", "combine_units", "hierarchy_unit", "lmfao_plan",
    "plan_units", "shared_plan", "column_sums", "gram", "left_multiply",
    "materialize",
    "right_multiply", "reference_gram", "reference_left_multiply",
    "reference_right_multiply", "reference_shared_plan",
    "reference_lmfao_plan", "reference_hierarchy_unit", "dict_path_matrix",
    "assert_aggregate_sets_equal",
]
