"""Attribute ordering and path structure of the factorised matrix (§3.4).

The factorised feature matrix is a tree: one level per attribute, hierarchies
concatenated in a chosen *hierarchy order* (the drill-down hierarchy last),
attributes within a hierarchy ordered least → most specific. The fully
materialised matrix is the cartesian product, across hierarchies, of each
hierarchy's root-to-leaf paths, sorted lexicographically.

:class:`HierarchyPaths` stores one hierarchy's sorted paths plus the derived
per-level run structure; :class:`AttributeOrder` combines hierarchies and
answers the structural queries every factorised operator needs: ordered
domains, suffix counts (COUNT_A), totals (TOTAL_A) and repetition factors
(TOTAL_{A_d} / TOTAL_{A_p} in Algorithm 2).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..relational.dataset import HierarchicalDataset
from ..relational.hierarchy import Hierarchy


class FactorizationError(ValueError):
    """Raised for malformed path sets or unknown attributes."""


class HierarchyPaths:
    """One hierarchy's sorted root-to-leaf paths and run structure.

    Parameters
    ----------
    name:
        Hierarchy name.
    attributes:
        Attribute names, least specific first.
    paths:
        Distinct root-to-leaf value tuples. They are deduplicated and
        sorted; the functional dependency (leaf determines ancestors) is
        validated.
    """

    def __init__(self, name: str, attributes: Sequence[str],
                 paths: Iterable[tuple], _presorted: bool = False):
        self.name = name
        self.attributes = tuple(attributes)
        depth = len(self.attributes)
        if _presorted:
            # Trusted internal path (see :meth:`extend`): the caller
            # guarantees sortedness, uniqueness and the FD.
            uniq = list(paths)
        else:
            uniq = sorted({tuple(p) for p in paths}, key=_path_sort_key)
            for p in uniq:
                if len(p) != depth:
                    raise FactorizationError(
                        f"path {p!r} does not match attributes "
                        f"{self.attributes}")
            leaves = [p[-1] for p in uniq]
            if len(set(leaves)) != len(leaves):
                raise FactorizationError(
                    f"hierarchy {name!r}: leaf values are not unique, the "
                    f"FD leaf → ancestors is violated")
        if not uniq:
            raise FactorizationError(f"hierarchy {name!r} has no paths")
        self.paths: list[tuple] = uniq
        self.n_leaves = len(uniq)
        self._path_pos: dict[tuple, int] | None = None
        # Per-level dictionary encodings (lazy): the code-indexed substrate
        # of the array-native aggregate plan. See :meth:`level_domain`.
        self._level_encodings: list[tuple[list, np.ndarray]] | None = None
        # Run structure per level (lazy, see :meth:`_runs`): a delta
        # ingest may extend paths whose derived units are patched from
        # the cache, never rebuilt — the O(paths · depth) run scan is
        # deferred until something actually walks the structure.
        self._runs: tuple[list[list], list[np.ndarray],
                          list[np.ndarray]] | None = None

    def _run_structure(self) -> tuple[list[list], list[np.ndarray],
                                      list[np.ndarray]]:
        """Contiguous runs of equal path-prefixes per level (memoized).

        ``ordered_domain[l]`` lists level-l values in path order;
        ``leaf_counts[l][k]`` is the number of leaves under
        ``ordered_domain[l][k]``; ``run_starts[l][k]`` its first path.
        """
        if self._runs is None:
            ordered_domain: list[list] = []
            leaf_counts: list[np.ndarray] = []
            run_starts: list[np.ndarray] = []
            for level in range(len(self.attributes)):
                values, counts, starts = [], [], []
                prev_prefix = object()
                for i, p in enumerate(self.paths):
                    prefix = p[:level + 1]
                    if prefix != prev_prefix:
                        values.append(p[level])
                        counts.append(0)
                        starts.append(i)
                        prev_prefix = prefix
                    counts[-1] += 1
                ordered_domain.append(values)
                leaf_counts.append(np.asarray(counts, dtype=float))
                run_starts.append(np.asarray(starts, dtype=int))
            self._runs = (ordered_domain, leaf_counts, run_starts)
        return self._runs

    @property
    def ordered_domain(self) -> list[list]:
        return self._run_structure()[0]

    @property
    def leaf_counts(self) -> list[np.ndarray]:
        return self._run_structure()[1]

    @property
    def run_starts(self) -> list[np.ndarray]:
        return self._run_structure()[2]

    @classmethod
    def from_relation_columns(cls, hierarchy: Hierarchy,
                              columns: Mapping[str, Sequence]) -> "HierarchyPaths":
        """Paths observed in raw data columns (one entry per record)."""
        cols = [columns[a] for a in hierarchy.attributes]
        return cls(hierarchy.name, hierarchy.attributes, set(zip(*cols)))

    @classmethod
    def from_relation(cls, hierarchy: Hierarchy,
                      relation) -> "HierarchyPaths":
        """Paths observed in a relation, via its encoded columns.

        The distinct root-to-leaf tuples come out of one composite-key
        pass over the interned code arrays instead of a per-row
        ``set(zip(...))``; falls back to the row path when a column
        cannot be encoded.
        """
        from ..relational.encoding import EncodingError
        attrs = list(hierarchy.attributes)
        try:
            paths = relation.group_index(attrs).keys()
        except EncodingError:
            return cls.from_relation_columns(
                hierarchy, {a: relation.column_values(a) for a in attrs})
        return cls(hierarchy.name, hierarchy.attributes, paths)

    def __len__(self) -> int:
        return self.n_leaves

    def __repr__(self) -> str:
        return (f"HierarchyPaths({self.name!r}, attrs={list(self.attributes)}, "
                f"n_leaves={self.n_leaves})")

    def level_of(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise FactorizationError(
                f"{attribute!r} not in hierarchy {self.name!r}") from None

    def path_values(self, level: int) -> list:
        """Level-``level`` value of every path, in path order (with repeats)."""
        return [p[level] for p in self.paths]

    def _encode_levels(self) -> list[tuple[list, np.ndarray]]:
        """Dictionary-encode every level's path values (memoized).

        Per level: ``(domain, codes)`` where ``domain`` lists the distinct
        level values in first-occurrence (path) order and ``codes[i]`` is
        the domain index of path ``i``'s value. Equal values that appear
        under *different* parents share one code — the same ``==``-merge a
        dict keyed on values performs — so the array plan and the dict
        oracle agree on key sets exactly (NaN values hash equal but compare
        unequal, keeping each NaN object its own code, as in a dict).
        """
        if self._level_encodings is None:
            encs: list[tuple[list, np.ndarray]] = []
            for level in range(len(self.attributes)):
                values = self.ordered_domain[level]
                if len(set(values)) == len(values):
                    # Distinct run values (the usual case): the run
                    # structure is the encoding — one repeat, no loop.
                    # The domain *is* the ordered_domain list, so memo
                    # tables keyed on domain identity are shared with it.
                    codes = np.repeat(
                        np.arange(len(values), dtype=np.int32),
                        self.leaf_counts[level].astype(np.int64))
                    encs.append((values, codes))
                    continue
                table: dict = {}
                domain: list = []
                codes = np.empty(self.n_leaves, dtype=np.int32)
                for i, p in enumerate(self.paths):
                    v = p[level]
                    code = table.setdefault(v, len(domain))
                    codes[i] = code
                    if code == len(domain):
                        domain.append(v)
                encs.append((domain, codes))
            self._level_encodings = encs
        return self._level_encodings

    def level_domain(self, level: int) -> list:
        """Distinct level-``level`` values, first-occurrence order.

        The returned list object is stable across calls — callers key
        memo tables (e.g. ``FeatureColumn.feature_array``) on its identity.
        """
        return self._encode_levels()[level][0]

    def level_codes(self, level: int) -> np.ndarray:
        """Per-path codes into :meth:`level_domain` (``int32``, n_leaves)."""
        return self._encode_levels()[level][1]

    def path_position(self, path: tuple) -> int:
        """Index of a root-to-leaf path (cached hash lookup)."""
        if self._path_pos is None:
            self._path_pos = {p: i for i, p in enumerate(self.paths)}
        try:
            return self._path_pos[tuple(path)]
        except KeyError:
            raise FactorizationError(
                f"path {path!r} not in hierarchy {self.name!r}") from None

    def extend(self, new_paths: Iterable[tuple]) -> "HierarchyPaths":
        """This hierarchy plus additional root-to-leaf paths (ingestion).

        Deduplicates against the existing paths and validates the
        leaf → ancestors FD incrementally (a delta whose new rows
        contradict an existing path's ancestry raises
        :class:`FactorizationError` instead of silently forking the
        hierarchy). The already-sorted path list is merged in place of a
        full re-sort, so a delta step costs O(new · log + paths), not
        O(paths · log paths). Returns ``self`` unchanged when nothing is
        new.
        """
        existing = set(self.paths)
        depth = len(self.attributes)
        fresh = sorted({tuple(p) for p in new_paths} - existing,
                       key=_path_sort_key)
        if not fresh:
            return self
        leaves = {p[-1] for p in self.paths}
        merged = list(self.paths)
        for p in fresh:
            if len(p) != depth:
                raise FactorizationError(
                    f"path {p!r} does not match attributes "
                    f"{self.attributes}")
            if p[-1] in leaves:
                raise FactorizationError(
                    f"hierarchy {self.name!r}: leaf values are not "
                    f"unique, the FD leaf → ancestors is violated")
            leaves.add(p[-1])
            bisect.insort(merged, p, key=_path_sort_key)
        return HierarchyPaths(self.name, self.attributes, merged,
                              _presorted=True)

    def restrict(self, depth: int) -> "HierarchyPaths":
        """The hierarchy truncated to its first ``depth`` attributes.

        Used while drilling down: before hierarchy H is drilled to level
        ``depth`` only its prefix participates in the matrix. The distinct
        prefixes are read off the precomputed run structure (every distinct
        prefix starts a run at its level), so a drill-step truncation is
        O(prefixes), not O(leaf paths) — the §4.4 unit swap never rescans
        the full path set.
        """
        if not 1 <= depth <= len(self.attributes):
            raise FactorizationError(
                f"depth {depth} out of range for hierarchy {self.name!r}")
        prefixes = {self.paths[s][:depth] for s in self.run_starts[depth - 1]}
        return HierarchyPaths(self.name, self.attributes[:depth], prefixes)


def _path_sort_key(path: tuple) -> tuple:
    """Sort key tolerant of mixed value types within a level."""
    return tuple((type(v).__name__, v) for v in path)


@dataclass(frozen=True)
class AttributeInfo:
    """Location of one attribute inside an :class:`AttributeOrder`."""

    name: str
    hierarchy_index: int
    level: int
    position: int  # global position in attribute order


class AttributeOrder:
    """Hierarchies in matrix order plus derived structural quantities.

    Notation bridge to the paper (§4.2.1): with attributes ordered
    ``A_n .. A_1`` left to right,

    * ``total(a)``      = TOTAL_a  — rows of the suffix matrix from ``a``;
    * ``counts(a)``     = COUNT_a  — per-value counts inside that suffix;
    * ``repetition(a)`` = TOTAL_{A_n} / TOTAL_a — how many times the suffix
      block repeats in the full matrix.
    """

    def __init__(self, hierarchies: Sequence[HierarchyPaths]):
        if not hierarchies:
            raise FactorizationError("attribute order needs ≥1 hierarchy")
        names = [h.name for h in hierarchies]
        if len(set(names)) != len(names):
            raise FactorizationError(f"duplicate hierarchy names: {names}")
        self.hierarchies: tuple[HierarchyPaths, ...] = tuple(hierarchies)
        self._attrs: list[AttributeInfo] = []
        self._by_name: dict[str, AttributeInfo] = {}
        pos = 0
        for hi, h in enumerate(self.hierarchies):
            for level, a in enumerate(h.attributes):
                if a in self._by_name:
                    raise FactorizationError(f"attribute {a!r} appears twice")
                info = AttributeInfo(a, hi, level, pos)
                self._attrs.append(info)
                self._by_name[a] = info
                pos += 1
        sizes = [h.n_leaves for h in self.hierarchies]
        # before/after leaf-count products per hierarchy index.
        self._before = np.ones(len(sizes) + 1)
        for i, s in enumerate(sizes):
            self._before[i + 1] = self._before[i] * s
        self._after = np.ones(len(sizes) + 1)
        for i in range(len(sizes) - 1, -1, -1):
            self._after[i] = self._after[i + 1] * sizes[i]
        self.n_rows = int(self._after[0])

    @classmethod
    def from_dataset(cls, dataset: HierarchicalDataset,
                     hierarchy_order: Sequence[str] | None = None,
                     depths: Mapping[str, int] | None = None
                     ) -> "AttributeOrder":
        """Build from observed data, optionally truncating hierarchies.

        ``hierarchy_order`` picks the hierarchy sequence (drill-down
        hierarchy last); ``depths`` truncates each hierarchy to its first
        *k* attributes (0 ⇒ hierarchy omitted entirely).
        """
        order = list(hierarchy_order or dataset.dimensions.names)
        out: list[HierarchyPaths] = []
        for name in order:
            h = dataset.dimensions[name]
            paths = HierarchyPaths.from_relation(h, dataset.relation)
            depth = (depths or {}).get(name, len(h.attributes))
            if depth == 0:
                continue
            if depth < len(h.attributes):
                paths = paths.restrict(depth)
            out.append(paths)
        return cls(out)

    # -- attribute lookups --------------------------------------------------------
    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attrs)

    @property
    def n_attributes(self) -> int:
        return len(self._attrs)

    def info(self, attribute: str) -> AttributeInfo:
        try:
            return self._by_name[attribute]
        except KeyError:
            raise FactorizationError(f"unknown attribute {attribute!r}") from None

    def hierarchy(self, attribute: str) -> HierarchyPaths:
        return self.hierarchies[self.info(attribute).hierarchy_index]

    def before(self, attribute: str) -> str | None:
        """Attribute directly preceding ``attribute`` in order (or None)."""
        p = self.info(attribute).position
        return self._attrs[p - 1].name if p else None

    # -- structural quantities -----------------------------------------------------
    def leaf_product_before(self, hierarchy_index: int) -> float:
        """Product of leaf counts of hierarchies strictly before index."""
        return float(self._before[hierarchy_index])

    def leaf_product_after(self, hierarchy_index: int) -> float:
        """Product of leaf counts of hierarchies strictly after index."""
        return float(self._after[hierarchy_index + 1])

    def total(self, attribute: str) -> float:
        """TOTAL_a: number of rows of the suffix matrix from ``a``."""
        info = self.info(attribute)
        h = self.hierarchies[info.hierarchy_index]
        return h.n_leaves * self.leaf_product_after(info.hierarchy_index)

    def repetition(self, attribute: str) -> float:
        """TOTAL_{A_n} / TOTAL_a: repetitions of ``a``'s suffix block."""
        return self.leaf_product_before(self.info(attribute).hierarchy_index)

    def ordered_domain(self, attribute: str) -> list:
        """Values of ``a`` in row order (each once, ancestor-grouped)."""
        info = self.info(attribute)
        return self.hierarchies[info.hierarchy_index].ordered_domain[info.level]

    def counts(self, attribute: str) -> np.ndarray:
        """COUNT_a aligned with :meth:`ordered_domain` (suffix counts)."""
        info = self.info(attribute)
        h = self.hierarchies[info.hierarchy_index]
        return (h.leaf_counts[info.level]
                * self.leaf_product_after(info.hierarchy_index))

    def counts_within(self, attribute: str) -> np.ndarray:
        """Leaf counts of ``a`` *within its own hierarchy* only."""
        info = self.info(attribute)
        return self.hierarchies[info.hierarchy_index].leaf_counts[info.level]

    def count_map(self, attribute: str) -> dict:
        """COUNT_a as ``{value: count}`` (values are unique by the FD)."""
        return dict(zip(self.ordered_domain(attribute),
                        self.counts(attribute).tolist()))

    # -- row decoding ---------------------------------------------------------------
    def row_key(self, row: int) -> tuple:
        """Attribute values of matrix row ``row`` (full-width key)."""
        if not 0 <= row < self.n_rows:
            raise FactorizationError(f"row {row} out of range")
        out: list = []
        for hi, h in enumerate(self.hierarchies):
            after = int(self._after[hi + 1])
            idx = (row // after) % h.n_leaves
            out.extend(h.paths[idx])
        return tuple(out)

    def row_keys(self) -> list[tuple]:
        """All row keys in row order. O(n·d) — test/small-input use only."""
        return [self.row_key(r) for r in range(self.n_rows)]

    def row_index(self, key: Sequence) -> int:
        """Inverse of :meth:`row_key`."""
        key = tuple(key)
        row = 0
        offset = 0
        for h in self.hierarchies:
            path = key[offset:offset + len(h.attributes)]
            offset += len(h.attributes)
            row = row * h.n_leaves + h.path_position(path)
        return row

    def reorder(self, hierarchy_order: Sequence[str]) -> "AttributeOrder":
        """Same data under a different hierarchy order (§3.4)."""
        by_name = {h.name: h for h in self.hierarchies}
        if set(hierarchy_order) != set(by_name):
            raise FactorizationError(
                f"order {list(hierarchy_order)} does not cover hierarchies "
                f"{sorted(by_name)}")
        return AttributeOrder([by_name[n] for n in hierarchy_order])

    def __repr__(self) -> str:
        parts = ", ".join(f"{h.name}={list(h.attributes)}" for h in self.hierarchies)
        return f"AttributeOrder({parts}, n_rows={self.n_rows})"
