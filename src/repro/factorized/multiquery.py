"""Multi-query execution of the decomposed aggregates (§4.3, Appendix I).

Two planners produce the full family {TOTAL_a, COUNT_a, COF_{a,b}}:

* :func:`shared_plan` — the paper's work-sharing plan (Algorithm 10):
  within each hierarchy, COUNT maps are built leaf-up with each level
  reusing the previous one, COF chains extend previously computed COFs,
  and cross-hierarchy COFs stay *lazy* rank-1 products (the §4.3
  independence optimization). Each stored relation is touched O(t) times.

* :func:`lmfao_plan` — an LMFAO-style baseline: every aggregate is computed
  as its own join-aggregate query (with early marginalization, which LMFAO
  also performs) and cross-hierarchy COFs are fully materialised. Correct
  but with no cross-query sharing — the Figure 8 comparison point.

Both planners are **array-native**: the counted relations flow through
them as code-indexed :class:`~repro.relational.countmap.EncodedCountMap`
arrays (dense per-attribute vectors for unary COUNT maps, COO code-pair
arrays for binary COFs), so join-multiply, marginalization, and COF chain
extension are ``searchsorted``/``bincount`` kernels with no dict
round-trips at any size. The pre-array dict pipeline is frozen verbatim in
:mod:`repro.factorized.reference` (``reference_shared_plan`` etc.) as the
property-test oracle; results are exactly equal, key set for key set.

The per-hierarchy work is factored into :class:`HierarchyAggregates` units
so the drill-down engine (§4.4) can recompute only the drilled hierarchy's
unit and combine the rest in O(1) per aggregate.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..relational.countmap import EncodedCountMap, aggregate_query_early
from .aggregates import CrossCOF
from .factorizer import Factorizer
from .forder import AttributeOrder, HierarchyPaths


@dataclass
class AggregateSet:
    """All decomposed aggregates of one attribute order.

    ``counts`` and same-hierarchy ``cofs`` hold code-indexed
    :class:`~repro.relational.countmap.EncodedCountMap` arrays on the
    production path (plain dict ``CountMap`` on the frozen oracle path);
    cross-hierarchy ``cofs`` stay lazy :class:`CrossCOF` factors under the
    shared plan. Both forms answer ``[...]``/``as_unary_dict`` alike.
    """

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict = field(default_factory=dict)
    cofs: dict[tuple[str, str], object] = field(default_factory=dict)

    def count_dict(self, attribute: str) -> dict:
        return self.counts[attribute].as_unary_dict()

    def cof_value(self, a: str, b: str, va, vb) -> float:
        return self.cofs[(a, b)][(va, vb)]


@dataclass
class HierarchyAggregates:
    """One hierarchy's within-hierarchy aggregate unit.

    Everything global is a scalar multiple of these: leaf-count maps per
    attribute, ancestor/descendant COF chains, the hierarchy's leaf total,
    and the attribute domains in path order. On the production path the
    maps are :class:`~repro.relational.countmap.EncodedCountMap` arrays
    keyed on the hierarchy's level encodings; the §4.4 drill recombination
    then rescales raw count vectors without ever decoding a key.
    """

    name: str
    attributes: tuple[str, ...]
    within_counts: dict
    within_cofs: dict[tuple[str, str], object]
    h_total: float
    ordered_domains: dict[str, list]

    def count_vector(self, attribute: str) -> np.ndarray:
        """Within counts aligned with ``ordered_domains[attribute]``."""
        return self.within_counts[attribute].dense_counts()


def _unit_from_relations(paths: HierarchyPaths,
                         relation_for: Callable[[str], EncodedCountMap]
                         ) -> HierarchyAggregates:
    """The shared leaf-up chain algebra over stored relations.

    Factored out of :func:`hierarchy_unit` so the sharded unit builder
    can replay the *identical* chain over relations whose distinct edge
    sets were computed in workers — every kernel call, cast and key order
    below is shared by both paths, which is what makes the sharded unit
    bitwise-equal by construction.
    """
    attrs = paths.attributes
    within: dict[str, EncodedCountMap] = {}
    leaf = attrs[-1]
    within[leaf] = relation_for(leaf).project_keep([leaf])
    for i in range(len(attrs) - 2, -1, -1):
        child = attrs[i + 1]
        rel = relation_for(child)  # schema [B_i, B_{i+1}]
        within[attrs[i]] = rel.join(within[child]).marginalize(child)

    cofs: dict[tuple[str, str], EncodedCountMap] = {}
    for j in range(1, len(attrs)):
        bj = attrs[j]
        chain = relation_for(bj).join(within[bj])
        cofs[(attrs[j - 1], bj)] = chain
        for i in range(j - 2, -1, -1):
            mid = attrs[i + 1]
            rel = relation_for(mid)
            chain = rel.join(cofs[(mid, bj)]).marginalize(mid)
            cofs[(attrs[i], bj)] = chain

    h_total = within[attrs[0]].total()
    domains = {a: paths.level_domain(level)
               for level, a in enumerate(attrs)}
    return HierarchyAggregates(paths.name, attrs, within, cofs, h_total,
                               domains)


def hierarchy_unit(paths: HierarchyPaths) -> HierarchyAggregates:
    """Compute one hierarchy's unit with the shared leaf-up plan.

    This is the expensive O(t²·w) building block that the drill-down
    optimizer recomputes only for the drilled hierarchy. Every step is an
    array kernel over the hierarchy's level encodings: the leaf-up COUNT
    chain is join-multiply + marginalize (a ``bincount`` per level), and
    each COF chain extension is one gather/``bincount`` pair.
    """
    factorizer = Factorizer(AttributeOrder([paths]))
    return _unit_from_relations(paths, factorizer.encoded_relation_for)


def _unit_edge_task(source, n_levels: int, dom_sizes: Sequence[int],
                    lo: int, hi: int):
    """Worker kernel: per-level sorted-unique combined edge codes.

    Operates on the packed level-code columns restricted to the leaf-path
    range ``[lo, hi)``. For level ``l >= 1`` the combined code is
    ``parent_code * |dom_l| + child_code`` — exactly the expression
    :meth:`Factorizer.encoded_relation_for` evaluates globally — and the
    per-range sorted uniques union exactly on the coordinator
    (``unique ∘ concat ∘ unique == unique``).

    Within-counts and COFs themselves are **not** additive across path
    ranges (a mid-level value split across ranges would double-count its
    chains), which is why shards return edge *sets*, not aggregates; the
    cheap pair-sized chain algebra replays on the coordinator.
    """
    import time as _time

    from ..relational.shard import shared_arrays
    t0 = _time.perf_counter()
    arrays, release = shared_arrays(source)
    try:
        uniqs = []
        for level in range(1, n_levels):
            combined = (arrays[f"l{level - 1}"][lo:hi].astype(np.int64)
                        * dom_sizes[level] + arrays[f"l{level}"][lo:hi])
            uniqs.append(np.unique(combined))
        return uniqs, _time.perf_counter() - t0, os.getpid()
    finally:
        release()


def sharded_hierarchy_unit(paths: HierarchyPaths, *,
                           sharder) -> HierarchyAggregates:
    """:func:`hierarchy_unit` with the edge scan fanned out over shards.

    The only part of a unit build that touches all ``n_leaves`` paths is
    the distinct-edge extraction per level; everything after operates on
    pair-sized arrays. Workers scan contiguous leaf-path ranges of the
    shared level-code columns and return per-level sorted-unique edge
    codes; the coordinator unions them (``np.unique`` of the
    concatenation — identical to the global unique), reconstructs the
    stored relations verbatim, and replays the serial chain algebra via
    :func:`_unit_from_relations`. Bitwise-equal to
    :func:`hierarchy_unit` by construction; gated by the frozen
    :mod:`repro.factorized.reference` oracle in the property tests.
    """
    attrs = paths.attributes
    k = len(attrs)
    if sharder is None or sharder.n_parts <= 1 or k == 1:
        return hierarchy_unit(paths)
    dom_sizes = [len(paths.level_domain(level)) for level in range(k)]
    arrays = {f"l{level}": paths.level_codes(level) for level in range(k)}
    parts = sharder.ranges(paths.n_leaves)
    results = sharder.run_shared(
        _unit_edge_task, arrays,
        [(k, dom_sizes, lo, hi) for lo, hi in parts], stage="units")

    rels: dict[str, EncodedCountMap] = {
        attrs[0]: EncodedCountMap.dense_unary(attrs[0],
                                              paths.level_domain(0))}
    for level in range(1, k):
        uniq = np.unique(np.concatenate(
            [part[level - 1] for part in results]))
        pdom = paths.level_domain(level - 1)
        cdom = paths.level_domain(level)
        rels[attrs[level]] = EncodedCountMap(
            (attrs[level - 1], attrs[level]), (pdom, cdom),
            ((uniq // len(cdom)).astype(np.int32),
             (uniq % len(cdom)).astype(np.int32)),
            np.ones(len(uniq)))
    factorizer = Factorizer.seeded(AttributeOrder([paths]), rels)
    return _unit_from_relations(paths, factorizer.encoded_relation_for)


def sharded_unit_builder(sharder) -> Callable[[HierarchyPaths],
                                              HierarchyAggregates]:
    """A drop-in ``builder`` for the drill/plan layers, bound to a sharder."""
    def build(paths: HierarchyPaths) -> HierarchyAggregates:
        return sharded_hierarchy_unit(paths, sharder=sharder)
    return build


def merge_unit_delta(old: HierarchyAggregates,
                     delta: HierarchyAggregates) -> HierarchyAggregates:
    """``old ∪ delta`` for disjoint leaf-path sets (append-only ingest).

    Every map in a hierarchy unit is additive over disjoint path sets, so
    a unit for the *new* paths alone merges into the stored unit with
    :meth:`~repro.relational.countmap.EncodedCountMap.merge_delta` —
    the O(new paths) patch the drill-down cache applies instead of an
    O(all paths) rebuild. Domains extend append-style: old values keep
    their positions (and codes), new values go to the end, so the merged
    unit's maps differ from a rebuilt unit's only in domain *order*
    (both answer every lookup identically).
    """
    if old.name != delta.name or old.attributes != delta.attributes:
        raise ValueError(
            f"cannot merge unit of {delta.name!r}{delta.attributes} into "
            f"{old.name!r}{old.attributes}")
    merged_domains: dict[str, list] = {}
    for a in old.attributes:
        dom = list(old.ordered_domains[a])
        present = set()
        try:
            present = set(dom)
        except TypeError:
            pass
        for v in delta.ordered_domains[a]:
            try:
                new = v not in present
            except TypeError:
                new = all(v is not u and v != u for u in dom)
            if new:
                dom.append(v)
                try:
                    present.add(v)
                except TypeError:
                    pass
        merged_domains[a] = dom
    within = {a: old.within_counts[a].merge_delta(
                  delta.within_counts[a], domains=(merged_domains[a],))
              for a in old.attributes}
    cofs = {pair: cof.merge_delta(
                delta.within_cofs[pair],
                domains=(merged_domains[pair[0]], merged_domains[pair[1]]))
            for pair, cof in old.within_cofs.items()}
    return HierarchyAggregates(old.name, old.attributes, within, cofs,
                               old.h_total + delta.h_total, merged_domains)


def combine_units(units: list[HierarchyAggregates]) -> AggregateSet:
    """Assemble global aggregates from per-hierarchy units.

    Within-hierarchy maps are rescaled by the leaf totals of later
    hierarchies (independence, §4.3); cross-hierarchy COFs stay lazy
    rank-1 products over the units' dense count vectors — the §4.4
    recombination is pure array arithmetic.
    """
    result = AggregateSet()
    h_totals = [u.h_total for u in units]
    after = _suffix_products(h_totals)

    for hi, unit in enumerate(units):
        for a in unit.attributes:
            result.counts[a] = unit.within_counts[a].scale(after[hi + 1])
            result.totals[a] = h_totals[hi] * after[hi + 1]
        for pair, cof in unit.within_cofs.items():
            result.cofs[pair] = cof.scale(after[hi + 1])

    for hi, ua in enumerate(units):
        for hj in range(hi + 1, len(units)):
            ub = units[hj]
            between = 1.0
            for hk in range(hi + 1, hj):
                between *= h_totals[hk]
            scale = between * after[hj + 1]
            for a in ua.attributes:
                wa = ua.count_vector(a)
                for b in ub.attributes:
                    result.cofs[(a, b)] = CrossCOF(
                        left_values=tuple(ua.ordered_domains[a]),
                        left_counts=wa,
                        right_values=tuple(ub.ordered_domains[b]),
                        right_counts=ub.count_vector(b),
                        scale=float(scale))
    return result


def shared_plan(factorizer: Factorizer,
                builder: Callable[[HierarchyPaths], HierarchyAggregates]
                = hierarchy_unit) -> AggregateSet:
    """Work-sharing multi-query plan for the whole aggregate family.

    ``builder`` computes one hierarchy's unit; the serving layer passes a
    memoizing builder so repeated plans over the same data reuse units.
    """
    units = [builder(h) for h in factorizer.order.hierarchies]
    return combine_units(units)


def plan_units(full_paths: Mapping[str, HierarchyPaths],
               depths: Mapping[str, int],
               order: Sequence[str],
               prev_units: Mapping[str, HierarchyAggregates] | None = None,
               builder: Callable[[HierarchyPaths], HierarchyAggregates]
               = hierarchy_unit) -> dict[str, HierarchyAggregates]:
    """Per-hierarchy units for the given drill depths, reusing prior work.

    This is the §4.4 maintenance step as a pure function: a hierarchy
    whose depth is unchanged keeps its unit from ``prev_units``; only
    hierarchies whose depth changed (the drilled one, normally) go back
    through ``builder``. Hierarchies at depth 0 are omitted from the
    matrix entirely. ``order`` fixes the output's hierarchy sequence —
    pass the drilled hierarchy last (§3.4) before combining.
    """
    prev = dict(prev_units or {})
    units: dict[str, HierarchyAggregates] = {}
    for name in order:
        paths = full_paths[name]
        depth = depths.get(name, len(paths.attributes))
        if depth == 0:
            continue
        old = prev.get(name)
        if old is not None and len(old.attributes) == depth:
            units[name] = old
            continue
        if depth < len(paths.attributes):
            paths = paths.restrict(depth)
        units[name] = builder(paths)
    return units


def lmfao_plan(factorizer: Factorizer) -> AggregateSet:
    """Independent-query baseline (early marginalization, no sharing).

    Every COUNT and COF is computed as a standalone join-aggregate over the
    relations in its scope; cross-hierarchy COFs are materialised as
    explicit counted relations. The relations flow through the same
    encoded-array kernels as the shared plan — the baseline differs only
    in plan structure, not storage format.
    """
    order = factorizer.order
    result = AggregateSet()
    attrs = order.attributes

    for a in attrs:
        rels = _scope_relations(factorizer, [a])
        result.counts[a] = aggregate_query_early(rels, [a])
        result.totals[a] = aggregate_query_early(rels, []).total()

    for i, a in enumerate(attrs):
        for b in attrs[i + 1:]:
            rels = _scope_relations(factorizer, [a, b])
            result.cofs[(a, b)] = aggregate_query_early(rels, [a, b])
    return result


def _scope_relations(factorizer: Factorizer, targets: list[str]
                     ) -> list[EncodedCountMap]:
    """Relations needed for a suffix aggregate grouped by ``targets``.

    The suffix matrix from the earliest target spans: the deeper part of
    that attribute's own hierarchy and every later hierarchy in full.
    """
    order = factorizer.order
    first = min(targets, key=lambda t: order.info(t).position)
    fi = order.info(first)
    rels: list[EncodedCountMap] = []
    h = order.hierarchies[fi.hierarchy_index]
    rels.append(factorizer.encoded_relation_for(first).project_keep([first]))
    for level in range(fi.level + 1, len(h.attributes)):
        rels.append(factorizer.encoded_relation_for(h.attributes[level]))
    for hi in range(fi.hierarchy_index + 1, len(order.hierarchies)):
        rels.extend(factorizer.encoded_relations_of_hierarchy(hi))
    return rels


def _suffix_products(h_totals: list[float]) -> list[float]:
    """``after[i] = Π_{j ≥ i} h_totals[j]`` with ``after[len] = 1``."""
    after = [1.0] * (len(h_totals) + 1)
    for i in range(len(h_totals) - 1, -1, -1):
        after[i] = after[i + 1] * h_totals[i]
    return after
