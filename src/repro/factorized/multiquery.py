"""Multi-query execution of the decomposed aggregates (§4.3, Appendix I).

Two planners produce the full family {TOTAL_a, COUNT_a, COF_{a,b}}:

* :func:`shared_plan` — the paper's work-sharing plan (Algorithm 10):
  within each hierarchy, COUNT maps are built leaf-up with each level
  reusing the previous one, COF chains extend previously computed COFs,
  and cross-hierarchy COFs stay *lazy* rank-1 products (the §4.3
  independence optimization). Each stored relation is touched O(t) times.

* :func:`lmfao_plan` — an LMFAO-style baseline: every aggregate is computed
  as its own join-aggregate query (with early marginalization, which LMFAO
  also performs) and cross-hierarchy COFs are fully materialised. Correct
  but with no cross-query sharing — the Figure 8 comparison point.

The per-hierarchy work is factored into :class:`HierarchyAggregates` units
so the drill-down engine (§4.4) can recompute only the drilled hierarchy's
unit and combine the rest in O(1) per aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..relational.countmap import CountMap, aggregate_query_early
from .aggregates import CrossCOF
from .factorizer import Factorizer
from .forder import AttributeOrder, HierarchyPaths


@dataclass
class AggregateSet:
    """All decomposed aggregates of one attribute order."""

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, CountMap] = field(default_factory=dict)
    cofs: dict[tuple[str, str], CountMap | CrossCOF] = field(default_factory=dict)

    def count_dict(self, attribute: str) -> dict:
        return self.counts[attribute].as_unary_dict()

    def cof_value(self, a: str, b: str, va, vb) -> float:
        return self.cofs[(a, b)][(va, vb)]


@dataclass
class HierarchyAggregates:
    """One hierarchy's within-hierarchy aggregate unit.

    Everything global is a scalar multiple of these: leaf-count maps per
    attribute, ancestor/descendant COF chains, the hierarchy's leaf total,
    and the attribute domains in path order.
    """

    name: str
    attributes: tuple[str, ...]
    within_counts: dict[str, CountMap]
    within_cofs: dict[tuple[str, str], CountMap]
    h_total: float
    ordered_domains: dict[str, list]


def hierarchy_unit(paths: HierarchyPaths) -> HierarchyAggregates:
    """Compute one hierarchy's unit with the shared leaf-up plan.

    This is the expensive O(t²·w) building block that the drill-down
    optimizer recomputes only for the drilled hierarchy.
    """
    order = AttributeOrder([paths])
    factorizer = Factorizer(order)
    attrs = paths.attributes
    within: dict[str, CountMap] = {}
    leaf = attrs[-1]
    within[leaf] = factorizer.relation_for(leaf).project_keep([leaf])
    for i in range(len(attrs) - 2, -1, -1):
        child = attrs[i + 1]
        rel = factorizer.relation_for(child)  # schema [B_i, B_{i+1}]
        within[attrs[i]] = rel.join(within[child]).marginalize(child)

    cofs: dict[tuple[str, str], CountMap] = {}
    for j in range(1, len(attrs)):
        bj = attrs[j]
        chain = factorizer.relation_for(bj).join(within[bj])
        cofs[(attrs[j - 1], bj)] = chain
        for i in range(j - 2, -1, -1):
            mid = attrs[i + 1]
            rel = factorizer.relation_for(mid)
            chain = rel.join(cofs[(mid, bj)]).marginalize(mid)
            cofs[(attrs[i], bj)] = chain

    h_total = within[attrs[0]].total()
    domains = {a: order.ordered_domain(a) for a in attrs}
    return HierarchyAggregates(paths.name, attrs, within, cofs, h_total, domains)


def combine_units(units: list[HierarchyAggregates]) -> AggregateSet:
    """Assemble global aggregates from per-hierarchy units.

    Within-hierarchy maps are rescaled by the leaf totals of later
    hierarchies (independence, §4.3); cross-hierarchy COFs stay lazy.
    """
    result = AggregateSet()
    h_totals = [u.h_total for u in units]
    after = _suffix_products(h_totals)

    for hi, unit in enumerate(units):
        for a in unit.attributes:
            result.counts[a] = unit.within_counts[a].scale(after[hi + 1])
            result.totals[a] = h_totals[hi] * after[hi + 1]
        for pair, cof in unit.within_cofs.items():
            result.cofs[pair] = cof.scale(after[hi + 1])

    for hi, ua in enumerate(units):
        for hj in range(hi + 1, len(units)):
            ub = units[hj]
            between = 1.0
            for hk in range(hi + 1, hj):
                between *= h_totals[hk]
            scale = between * after[hj + 1]
            for a in ua.attributes:
                wa = ua.within_counts[a].as_unary_dict()
                dom_a = ua.ordered_domains[a]
                for b in ub.attributes:
                    wb = ub.within_counts[b].as_unary_dict()
                    dom_b = ub.ordered_domains[b]
                    result.cofs[(a, b)] = CrossCOF(
                        left_values=tuple(dom_a),
                        left_counts=np.asarray([wa[v] for v in dom_a]),
                        right_values=tuple(dom_b),
                        right_counts=np.asarray([wb[v] for v in dom_b]),
                        scale=float(scale))
    return result


def shared_plan(factorizer: Factorizer,
                builder: Callable[[HierarchyPaths], HierarchyAggregates]
                = hierarchy_unit) -> AggregateSet:
    """Work-sharing multi-query plan for the whole aggregate family.

    ``builder`` computes one hierarchy's unit; the serving layer passes a
    memoizing builder so repeated plans over the same data reuse units.
    """
    units = [builder(h) for h in factorizer.order.hierarchies]
    return combine_units(units)


def plan_units(full_paths: Mapping[str, HierarchyPaths],
               depths: Mapping[str, int],
               order: Sequence[str],
               prev_units: Mapping[str, HierarchyAggregates] | None = None,
               builder: Callable[[HierarchyPaths], HierarchyAggregates]
               = hierarchy_unit) -> dict[str, HierarchyAggregates]:
    """Per-hierarchy units for the given drill depths, reusing prior work.

    This is the §4.4 maintenance step as a pure function: a hierarchy
    whose depth is unchanged keeps its unit from ``prev_units``; only
    hierarchies whose depth changed (the drilled one, normally) go back
    through ``builder``. Hierarchies at depth 0 are omitted from the
    matrix entirely. ``order`` fixes the output's hierarchy sequence —
    pass the drilled hierarchy last (§3.4) before combining.
    """
    prev = dict(prev_units or {})
    units: dict[str, HierarchyAggregates] = {}
    for name in order:
        paths = full_paths[name]
        depth = depths.get(name, len(paths.attributes))
        if depth == 0:
            continue
        old = prev.get(name)
        if old is not None and len(old.attributes) == depth:
            units[name] = old
            continue
        if depth < len(paths.attributes):
            paths = paths.restrict(depth)
        units[name] = builder(paths)
    return units


def lmfao_plan(factorizer: Factorizer) -> AggregateSet:
    """Independent-query baseline (early marginalization, no sharing).

    Every COUNT and COF is computed as a standalone join-aggregate over the
    relations in its scope; cross-hierarchy COFs are materialised as
    explicit counted relations.
    """
    order = factorizer.order
    result = AggregateSet()
    attrs = order.attributes

    for a in attrs:
        rels = _scope_relations(factorizer, [a])
        result.counts[a] = aggregate_query_early(rels, [a])
        result.totals[a] = aggregate_query_early(rels, []).total()

    for i, a in enumerate(attrs):
        for b in attrs[i + 1:]:
            rels = _scope_relations(factorizer, [a, b])
            result.cofs[(a, b)] = aggregate_query_early(rels, [a, b])
    return result


def _scope_relations(factorizer: Factorizer, targets: list[str]
                     ) -> list[CountMap]:
    """Relations needed for a suffix aggregate grouped by ``targets``.

    The suffix matrix from the earliest target spans: the deeper part of
    that attribute's own hierarchy and every later hierarchy in full.
    """
    order = factorizer.order
    first = min(targets, key=lambda t: order.info(t).position)
    fi = order.info(first)
    rels: list[CountMap] = []
    h = order.hierarchies[fi.hierarchy_index]
    rels.append(factorizer.relation_for(first).project_keep([first]))
    for level in range(fi.level + 1, len(h.attributes)):
        rels.append(factorizer.relation_for(h.attributes[level]))
    for hi in range(fi.hierarchy_index + 1, len(order.hierarchies)):
        rels.extend(factorizer.relations_of_hierarchy(hi))
    return rels


def _suffix_products(h_totals: list[float]) -> list[float]:
    """``after[i] = Π_{j ≥ i} h_totals[j]`` with ``after[len] = 1``."""
    after = [1.0] * (len(h_totals) + 1)
    for i in range(len(h_totals) - 1, -1, -1):
        after[i] = after[i + 1] * h_totals[i]
    return after
