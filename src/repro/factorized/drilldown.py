"""Drill-down maintenance of decomposed aggregates (§4.4, Appendix J).

Each Reptile invocation evaluates *every* candidate hierarchy: it
tentatively drills each one level deeper, which changes the factorised
matrix and therefore the aggregate family. Recomputing everything from
scratch per candidate ("Static") wastes work; the paper exploits hierarchy
independence:

* the drilled hierarchy's within-aggregates must be recomputed (O(t²·w)),
* every *other* hierarchy's globals only change by a scalar factor
  (``TOTAL'_{D_v} / TOTAL_{D_v}``), an O(1) "zoom" update ("Dynamic"),
* and because a candidate that is *not* chosen will be evaluated again
  identically on the next invocation, its freshly computed unit can be
  cached keyed on (hierarchy, depth) ("Cache + Dynamic", §5.1.3).

:class:`DrilldownEngine` implements all three modes; Figure 9's benchmark
invokes it repeatedly and measures the work per mode. Instrumentation
(`unit_computations`) counts the expensive unit builds so tests can assert
the sharing behaviour exactly.

The production drill loop applies the same reuse and ordering rules
through :func:`~repro.factorized.multiquery.plan_units` (see
``DrillSession.aggregates``); a change to either rule must land in both
implementations.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from .forder import FactorizationError, HierarchyPaths
from .multiquery import (AggregateSet, HierarchyAggregates, combine_units,
                         hierarchy_unit, merge_unit_delta,
                         sharded_unit_builder)

MODES = ("static", "dynamic", "cache")


class DrilldownEngine:
    """Maintains decomposed aggregates across drill-down invocations.

    Parameters
    ----------
    full_paths:
        The *fully specific* paths of every hierarchy, in hierarchy order.
        Drilling truncates/extends views of these.
    initial_depths:
        How many attributes of each hierarchy are initially revealed
        (must be ≥ 1 so every hierarchy participates in the matrix).
    mode:
        "static", "dynamic" or "cache" (see module docstring).
    builder / combiner:
        The unit build and recombination implementations. Default to the
        array-native :func:`~repro.factorized.multiquery.hierarchy_unit` /
        :func:`~repro.factorized.multiquery.combine_units`; the Figure 9
        benchmark passes the frozen dict-oracle pair from
        :mod:`repro.factorized.reference` to measure the array speedup on
        identical plan structure.
    """

    def __init__(self, full_paths: Sequence[HierarchyPaths],
                 initial_depths: Mapping[str, int] | None = None,
                 mode: str = "cache",
                 builder: Callable[[HierarchyPaths], HierarchyAggregates]
                 = hierarchy_unit,
                 combiner: Callable[[list], AggregateSet] = combine_units,
                 sharder=None):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self.mode = mode
        if sharder is not None and builder is hierarchy_unit:
            # The shard-parallel unit build is bitwise-equal to the
            # serial builder, so caching/reuse semantics are unchanged.
            builder = sharded_unit_builder(sharder)
        self._builder = builder
        self._combiner = combiner
        self.full_paths: dict[str, HierarchyPaths] = {
            p.name: p for p in full_paths}
        if len(self.full_paths) != len(full_paths):
            raise FactorizationError("duplicate hierarchy names")
        self._order_names: list[str] = [p.name for p in full_paths]
        self.depths: dict[str, int] = {}
        for name, paths in self.full_paths.items():
            depth = (initial_depths or {}).get(name, 1)
            if not 1 <= depth <= len(paths.attributes):
                raise FactorizationError(
                    f"initial depth {depth} invalid for hierarchy {name!r}")
            self.depths[name] = depth
        # Instrumentation: how many expensive unit builds have run.
        self.unit_computations = 0
        # (hierarchy, depth) -> truncated HierarchyPaths (mode-independent).
        self._truncated_cache: dict[tuple[str, int], HierarchyPaths] = {}
        # Current units (dynamic/cache modes keep these warm).
        self._units: dict[str, HierarchyAggregates] = {}
        self._cache: dict[tuple[str, int], HierarchyAggregates] = {}
        # Units built while evaluating candidates this invocation; a commit
        # of the evaluated hierarchy reuses them instead of recomputing.
        self._evaluated: dict[tuple[str, int], HierarchyAggregates] = {}
        # Instrumentation: cached units patched in place by ingest_paths
        # (each one an O(new paths) merge instead of a full unit build).
        self.unit_patches = 0
        if self.mode != "static":
            for name in self._order_names:
                self._units[name] = self._compute_unit(name, self.depths[name])

    # -- unit computation -------------------------------------------------------------
    def _truncated(self, name: str, depth: int) -> HierarchyPaths:
        """Truncated path structure, memoized per (hierarchy, depth).

        Truncation is independent of drill state and mode, so candidates
        re-evaluated across invocations (the never-picked hierarchy of
        §5.1.3) reuse the structure — and, with it, the memoized level
        encodings the array-native unit builder gathers from.
        """
        paths = self.full_paths[name]
        if depth == len(paths.attributes):
            return paths
        key = (name, depth)
        hit = self._truncated_cache.get(key)
        if hit is None:
            hit = self._truncated_cache[key] = paths.restrict(depth)
        return hit

    def _compute_unit(self, name: str, depth: int) -> HierarchyAggregates:
        if self.mode == "cache":
            key = (name, depth)
            if key in self._cache:
                return self._cache[key]
            unit = self._build_unit(name, depth)
            self._cache[key] = unit
            return unit
        return self._build_unit(name, depth)

    def _build_unit(self, name: str, depth: int) -> HierarchyAggregates:
        self.unit_computations += 1
        return self._builder(self._truncated(name, depth))

    # -- delta ingestion ----------------------------------------------------------------
    def ingest_paths(self, name: str, new_paths) -> int:
        """Extend hierarchy ``name`` with new root-to-leaf paths.

        Memo entries are *patched*, not dropped: every cached or live
        unit of ``name`` whose depth actually gains prefixes is merged
        with a unit built from the new paths alone
        (:func:`~repro.factorized.multiquery.merge_unit_delta`); units
        of other hierarchies — and depths the delta does not reach —
        are retained untouched. Returns the number of genuinely new
        full-depth paths.
        """
        if name not in self.full_paths:
            raise FactorizationError(f"unknown hierarchy {name!r}")
        old_full = self.full_paths[name]
        extended = old_full.extend(new_paths)
        if extended is old_full:
            return 0
        known = set(old_full.paths)
        fresh = [p for p in extended.paths if p not in known]
        self.full_paths[name] = extended
        # Patch the truncated-structure memo for this hierarchy only.
        for key in [k for k in self._truncated_cache if k[0] == name]:
            self._truncated_cache[key] = extended.restrict(key[1])
        delta_units: dict[int, HierarchyAggregates | None] = {}

        def delta_unit(depth: int) -> HierarchyAggregates | None:
            """Unit over the prefixes new at ``depth`` (None: no change)."""
            if depth not in delta_units:
                old_prefixes = set(
                    old_full.paths if depth == len(old_full.attributes)
                    else old_full.restrict(depth).paths)
                added = {p[:depth] for p in fresh} - old_prefixes
                delta_units[depth] = None if not added else hierarchy_unit(
                    HierarchyPaths(name, extended.attributes[:depth], added))
            return delta_units[depth]

        for (n, depth), unit in list(self._cache.items()):
            if n != name:
                continue  # other hierarchies' entries stay warm untouched
            patch = delta_unit(depth)
            if patch is not None:
                self._cache[(n, depth)] = merge_unit_delta(unit, patch)
                self.unit_patches += 1
        if name in self._units:
            patch = delta_unit(self.depths[name])
            if patch is not None:
                if self.mode == "cache":
                    self._units[name] = self._cache[(name, self.depths[name])] \
                        if (name, self.depths[name]) in self._cache \
                        else merge_unit_delta(self._units[name], patch)
                else:
                    self._units[name] = merge_unit_delta(self._units[name],
                                                         patch)
                    self.unit_patches += 1
        self._evaluated.clear()  # tentative units may predate the delta
        return len(fresh)

    # -- candidate evaluation -----------------------------------------------------------
    def candidates(self) -> list[str]:
        """Hierarchies that can still be drilled one level deeper."""
        return [n for n in self._order_names
                if self.depths[n] < len(self.full_paths[n].attributes)]

    def evaluate_candidate(self, name: str) -> AggregateSet:
        """Aggregates of the matrix with ``name`` drilled one level deeper.

        The candidate hierarchy moves to the end of the hierarchy order
        (§3.4: the drill-down hierarchy is ordered last).
        """
        if name not in self.full_paths:
            raise FactorizationError(f"unknown hierarchy {name!r}")
        new_depth = self.depths[name] + 1
        if new_depth > len(self.full_paths[name].attributes):
            raise FactorizationError(f"hierarchy {name!r} is fully drilled")
        order_names = [n for n in self._order_names if n != name] + [name]
        units = []
        for n in order_names:
            if n == name:
                unit = self._compute_unit(n, new_depth)
                if self.mode != "static":
                    self._evaluated[(n, new_depth)] = unit
                units.append(unit)
            elif self.mode == "static":
                units.append(self._compute_unit(n, self.depths[n]))
            else:
                units.append(self._units[n])
        return self._combiner(units)

    def evaluate_all(self) -> dict[str, AggregateSet]:
        """One Reptile invocation: evaluate every candidate drill-down."""
        return {name: self.evaluate_candidate(name)
                for name in self.candidates()}

    # -- committing a drill --------------------------------------------------------------
    def drill(self, name: str) -> None:
        """Commit the user's choice: hierarchy ``name`` gains one level."""
        new_depth = self.depths[name] + 1
        if new_depth > len(self.full_paths[name].attributes):
            raise FactorizationError(f"hierarchy {name!r} is fully drilled")
        self.depths[name] = new_depth
        self._order_names = [n for n in self._order_names if n != name] + [name]
        if self.mode != "static":
            evaluated = self._evaluated.get((name, new_depth))
            self._units[name] = evaluated if evaluated is not None \
                else self._compute_unit(name, new_depth)
            self._evaluated.clear()

    def current_aggregates(self) -> AggregateSet:
        """Aggregates of the committed state (no tentative drill)."""
        units = []
        for n in self._order_names:
            if self.mode == "static":
                units.append(self._compute_unit(n, self.depths[n]))
            else:
                units.append(self._units[n])
        return self._combiner(units)
