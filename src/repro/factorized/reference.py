"""Straight-from-pseudocode matrix operations (Algorithms 2–4).

These are deliberately literal transcriptions of the paper's Appendix E
pseudocode, kept separate from the vectorized production implementations in
:mod:`repro.factorized.ops`. The test suite runs both on the same inputs
and asserts bitwise-comparable agreement (up to float associativity); the
benchmarks use the vectorized versions.
"""

from __future__ import annotations

import numpy as np

from .aggregates import DecomposedAggregates
from .factorizer import Factorizer
from .matrix import FactorizedMatrix


def reference_gram(matrix: FactorizedMatrix) -> np.ndarray:
    """Algorithm 2: gram matrix element-by-element from COUNT/COF/TOTAL."""
    order = matrix.order
    agg = DecomposedAggregates(order)
    m = matrix.n_cols
    grand = agg.grand_total()
    out = np.empty((m, m))
    for i in range(m):
        for j in range(i, m):
            ci, cj = matrix.columns[i], matrix.columns[j]
            ap, aq = ci.attribute, cj.attribute
            pi = order.info(ap).position
            qi = order.info(aq).position
            if pi > qi:  # ensure ap is the earlier attribute
                ci, cj = cj, ci
                ap, aq = aq, ap
                pi, qi = qi, pi
            if ap == aq:
                rep = grand / agg.total(ap)
                value = rep * sum(
                    count * ci.feature_of(v) * cj.feature_of(v)
                    for v, count in agg.count(ap).items())
            else:
                rep = grand / agg.total(ap)
                cof = agg.cof(ap, aq)
                value = rep * sum(
                    cof[(va, vb)] * ci.feature_of(va) * cj.feature_of(vb)
                    for va in order.ordered_domain(ap)
                    for vb in order.ordered_domain(aq))
            out[i, j] = value
            out[j, i] = value
    return out


def reference_left_multiply(matrix: FactorizedMatrix, a: np.ndarray
                            ) -> np.ndarray:
    """Algorithm 3: row-of-A times column-of-X with prefix-sum range sums."""
    a = np.atleast_2d(np.asarray(a, dtype=float))
    order = matrix.order
    agg = DecomposedAggregates(order)
    grand = agg.grand_total()
    q = a.shape[0]
    out = np.empty((q, matrix.n_cols))
    for qi in range(q):
        row = a[qi]
        prefix = np.concatenate(([0.0], np.cumsum(row)))
        for col_idx, col in enumerate(matrix.columns):
            ap = col.attribute
            domain = order.ordered_domain(ap)
            counts = order.counts(ap).astype(int)
            result = 0.0
            start = 0
            repetitions = int(grand / agg.total(ap))
            for _ in range(repetitions):
                for v, count in zip(domain, counts):
                    range_sum = prefix[start + count] - prefix[start]
                    result += range_sum * col.feature_of(v)
                    start += count
            out[qi, col_idx] = result
    return out


def reference_right_multiply(matrix: FactorizedMatrix, b: np.ndarray
                             ) -> np.ndarray:
    """Algorithm 4: incremental dot products over the row iterator.

    Maintains the previous row's per-column feature values and updates each
    output entry by the difference whenever an attribute changes.
    """
    b = np.asarray(b, dtype=float)
    squeeze = b.ndim == 1
    if squeeze:
        b = b[:, None]
    order = matrix.order
    factorizer = Factorizer(order)
    cols_of_attr: dict[str, list[int]] = {}
    for idx, col in enumerate(matrix.columns):
        cols_of_attr.setdefault(col.attribute, []).append(idx)
    n, p = order.n_rows, b.shape[1]
    out = np.empty((n, p))
    current = np.zeros(matrix.n_cols)
    dot = np.zeros(p)
    for r, update in enumerate(factorizer.row_iterator()):
        for attr, value in update.items():
            for idx in cols_of_attr.get(attr, ()):
                new_f = matrix.columns[idx].feature_of(value)
                dot += (new_f - current[idx]) * b[idx, :]
                current[idx] = new_f
        out[r] = dot
    return out[:, 0] if squeeze else out
