"""The frozen pre-array reference pipeline (oracles for the hot path).

Two families of oracles live here, deliberately untouched by further
optimization work:

* **Straight-from-pseudocode matrix operations** (Algorithms 2–4) —
  literal transcriptions of the paper's Appendix E pseudocode
  (:func:`reference_gram`, :func:`reference_left_multiply`,
  :func:`reference_right_multiply`). Tests and benchmarks assert
  bitwise-comparable agreement (up to float associativity) with
  :mod:`repro.factorized.ops`.

* **The dict multi-query pipeline** — the pre-array planners over
  dict-keyed :class:`~repro.relational.countmap.CountMap` relations
  (:func:`reference_hierarchy_unit`, :func:`reference_combine_units`,
  :func:`reference_shared_plan`, :func:`reference_lmfao_plan`) and the
  per-value feature loops of the pre-array matrix build
  (:func:`dict_path_matrix`, :func:`reference_cluster_tables`). The
  array-native production path must reproduce these **exactly** — same
  key sets, bitwise-equal counts and feature arrays — which hypothesis
  property tests and the Figure 7–9 benchmarks assert in-run via
  :func:`assert_aggregate_sets_equal`.
"""

from __future__ import annotations

import copy

import numpy as np

from ..relational.countmap import CountMap, aggregate_query_early
from .aggregates import CrossCOF, DecomposedAggregates
from .factorizer import Factorizer
from .forder import AttributeOrder, HierarchyPaths
from .matrix import FactorizedMatrix
from .multiquery import AggregateSet, HierarchyAggregates, _suffix_products


def reference_gram(matrix: FactorizedMatrix) -> np.ndarray:
    """Algorithm 2: gram matrix element-by-element from COUNT/COF/TOTAL."""
    order = matrix.order
    agg = DecomposedAggregates(order)
    m = matrix.n_cols
    grand = agg.grand_total()
    out = np.empty((m, m))
    for i in range(m):
        for j in range(i, m):
            ci, cj = matrix.columns[i], matrix.columns[j]
            ap, aq = ci.attribute, cj.attribute
            pi = order.info(ap).position
            qi = order.info(aq).position
            if pi > qi:  # ensure ap is the earlier attribute
                ci, cj = cj, ci
                ap, aq = aq, ap
                pi, qi = qi, pi
            if ap == aq:
                rep = grand / agg.total(ap)
                value = rep * sum(
                    count * ci.feature_of(v) * cj.feature_of(v)
                    for v, count in agg.count(ap).items())
            else:
                rep = grand / agg.total(ap)
                cof = agg.cof(ap, aq)
                value = rep * sum(
                    cof[(va, vb)] * ci.feature_of(va) * cj.feature_of(vb)
                    for va in order.ordered_domain(ap)
                    for vb in order.ordered_domain(aq))
            out[i, j] = value
            out[j, i] = value
    return out


def reference_left_multiply(matrix: FactorizedMatrix, a: np.ndarray
                            ) -> np.ndarray:
    """Algorithm 3: row-of-A times column-of-X with prefix-sum range sums."""
    a = np.atleast_2d(np.asarray(a, dtype=float))
    order = matrix.order
    agg = DecomposedAggregates(order)
    grand = agg.grand_total()
    q = a.shape[0]
    out = np.empty((q, matrix.n_cols))
    for qi in range(q):
        row = a[qi]
        prefix = np.concatenate(([0.0], np.cumsum(row)))
        for col_idx, col in enumerate(matrix.columns):
            ap = col.attribute
            domain = order.ordered_domain(ap)
            counts = order.counts(ap).astype(int)
            result = 0.0
            start = 0
            repetitions = int(grand / agg.total(ap))
            for _ in range(repetitions):
                for v, count in zip(domain, counts):
                    range_sum = prefix[start + count] - prefix[start]
                    result += range_sum * col.feature_of(v)
                    start += count
            out[qi, col_idx] = result
    return out


def reference_right_multiply(matrix: FactorizedMatrix, b: np.ndarray
                             ) -> np.ndarray:
    """Algorithm 4: incremental dot products over the row iterator.

    Maintains the previous row's per-column feature values and updates each
    output entry by the difference whenever an attribute changes.
    """
    b = np.asarray(b, dtype=float)
    squeeze = b.ndim == 1
    if squeeze:
        b = b[:, None]
    order = matrix.order
    factorizer = Factorizer(order)
    cols_of_attr: dict[str, list[int]] = {}
    for idx, col in enumerate(matrix.columns):
        cols_of_attr.setdefault(col.attribute, []).append(idx)
    n, p = order.n_rows, b.shape[1]
    out = np.empty((n, p))
    current = np.zeros(matrix.n_cols)
    dot = np.zeros(p)
    for r, update in enumerate(factorizer.row_iterator()):
        for attr, value in update.items():
            for idx in cols_of_attr.get(attr, ()):
                new_f = matrix.columns[idx].feature_of(value)
                dot += (new_f - current[idx]) * b[idx, :]
                current[idx] = new_f
        out[r] = dot
    return out[:, 0] if squeeze else out


# ---------------------------------------------------------------------------
# The frozen dict multi-query pipeline (pre-array §4.3/§4.4 planners).
# ---------------------------------------------------------------------------


def reference_hierarchy_unit(paths: HierarchyPaths) -> HierarchyAggregates:
    """One hierarchy's unit via the dict-keyed leaf-up plan (frozen)."""
    order = AttributeOrder([paths])
    factorizer = Factorizer(order)
    attrs = paths.attributes
    within: dict[str, CountMap] = {}
    leaf = attrs[-1]
    within[leaf] = factorizer.relation_for(leaf).project_keep([leaf])
    for i in range(len(attrs) - 2, -1, -1):
        child = attrs[i + 1]
        rel = factorizer.relation_for(child)  # schema [B_i, B_{i+1}]
        within[attrs[i]] = rel.join(within[child]).marginalize(child)

    cofs: dict[tuple[str, str], CountMap] = {}
    for j in range(1, len(attrs)):
        bj = attrs[j]
        chain = factorizer.relation_for(bj).join(within[bj])
        cofs[(attrs[j - 1], bj)] = chain
        for i in range(j - 2, -1, -1):
            mid = attrs[i + 1]
            rel = factorizer.relation_for(mid)
            chain = rel.join(cofs[(mid, bj)]).marginalize(mid)
            cofs[(attrs[i], bj)] = chain

    h_total = within[attrs[0]].total()
    domains = {a: order.ordered_domain(a) for a in attrs}
    return HierarchyAggregates(paths.name, attrs, within, cofs, h_total,
                               domains)


def reference_combine_units(units: list[HierarchyAggregates]) -> AggregateSet:
    """Assemble global aggregates from dict units (frozen pre-array form)."""
    result = AggregateSet()
    h_totals = [u.h_total for u in units]
    after = _suffix_products(h_totals)

    for hi, unit in enumerate(units):
        for a in unit.attributes:
            result.counts[a] = unit.within_counts[a].scale(after[hi + 1])
            result.totals[a] = h_totals[hi] * after[hi + 1]
        for pair, cof in unit.within_cofs.items():
            result.cofs[pair] = cof.scale(after[hi + 1])

    for hi, ua in enumerate(units):
        for hj in range(hi + 1, len(units)):
            ub = units[hj]
            between = 1.0
            for hk in range(hi + 1, hj):
                between *= h_totals[hk]
            scale = between * after[hj + 1]
            for a in ua.attributes:
                wa = ua.within_counts[a].as_unary_dict()
                dom_a = ua.ordered_domains[a]
                for b in ub.attributes:
                    wb = ub.within_counts[b].as_unary_dict()
                    dom_b = ub.ordered_domains[b]
                    result.cofs[(a, b)] = CrossCOF(
                        left_values=tuple(dom_a),
                        left_counts=np.asarray([wa[v] for v in dom_a]),
                        right_values=tuple(dom_b),
                        right_counts=np.asarray([wb[v] for v in dom_b]),
                        scale=float(scale))
    return result


def reference_shared_plan(factorizer: Factorizer) -> AggregateSet:
    """The work-sharing plan over dict counted relations (frozen)."""
    return reference_combine_units(
        [reference_hierarchy_unit(h) for h in factorizer.order.hierarchies])


def reference_lmfao_plan(factorizer: Factorizer) -> AggregateSet:
    """The LMFAO-style per-query baseline over dict relations (frozen)."""
    order = factorizer.order
    result = AggregateSet()
    attrs = order.attributes

    for a in attrs:
        rels = _reference_scope_relations(factorizer, [a])
        result.counts[a] = aggregate_query_early(rels, [a])
        result.totals[a] = aggregate_query_early(rels, []).total()

    for i, a in enumerate(attrs):
        for b in attrs[i + 1:]:
            rels = _reference_scope_relations(factorizer, [a, b])
            result.cofs[(a, b)] = aggregate_query_early(rels, [a, b])
    return result


def _reference_scope_relations(factorizer: Factorizer, targets: list[str]
                               ) -> list[CountMap]:
    order = factorizer.order
    first = min(targets, key=lambda t: order.info(t).position)
    fi = order.info(first)
    rels: list[CountMap] = []
    h = order.hierarchies[fi.hierarchy_index]
    rels.append(factorizer.relation_for(first).project_keep([first]))
    for level in range(fi.level + 1, len(h.attributes)):
        rels.append(factorizer.relation_for(h.attributes[level]))
    for hi in range(fi.hierarchy_index + 1, len(order.hierarchies)):
        rels.extend(factorizer.relations_of_hierarchy(hi))
    return rels


# ---------------------------------------------------------------------------
# The frozen per-value feature loops (pre-array matrix build).
# ---------------------------------------------------------------------------


def dict_path_matrix(matrix: FactorizedMatrix) -> FactorizedMatrix:
    """A clone whose feature arrays come from the per-value dict loops.

    This is the pre-array matrix build: one Python ``feature_of`` call per
    domain element and per leaf-path cell, instead of the memoized
    ``feature_array`` gathers. The arrays must be **bitwise** equal — the
    property tests and Figure 7's in-run equality checks compare every
    downstream operation on both builds.
    """
    order = matrix.order
    clone = copy.copy(matrix)
    clone._dom_features = [
        np.asarray([c.feature_of(v) for v in order.ordered_domain(c.attribute)],
                   dtype=float)
        for c in matrix.columns]
    leaf: list[np.ndarray] = []
    for hi, h in enumerate(order.hierarchies):
        cols = matrix.hierarchy_columns(hi)
        mat = np.empty((h.n_leaves, len(cols)))
        for k, ci in enumerate(cols):
            col = matrix.columns[ci]
            level = order.info(col.attribute).level
            mat[:, k] = [col.feature_of(v) for v in h.path_values(level)]
        leaf.append(mat)
    clone._leaf_features = leaf
    return clone


def reference_cluster_tables(matrix: FactorizedMatrix,
                             columns: list[int],
                             inter_pos: list[int], intra_pos: list[int],
                             n_clusters: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-cluster inter table and intra rows via the frozen loops.

    The pre-array ``ClusterOps`` structure builders: one ``feature_of``
    call per cluster/row cell. Returns ``(inter_values, intra_rows)``
    matching ``ClusterOps._inter_values`` / ``_intra_rows`` bitwise.
    """
    order = matrix.order
    last_hi = len(order.hierarchies) - 1
    last = order.hierarchies[last_hi]
    if len(last.attributes) == 1:
        parent_starts = np.asarray([0])
    else:
        parent_starts = last.run_starts[len(last.attributes) - 2]
    n_parents = len(parent_starts)
    before_last = int(order.leaf_product_before(last_hi))

    inter = np.empty((n_clusters, len(inter_pos)))
    for k, pos in enumerate(inter_pos):
        col = matrix.columns[columns[pos]]
        info = order.info(col.attribute)
        if info.hierarchy_index == last_hi:
            vals = np.asarray([col.feature_of(last.paths[s][info.level])
                               for s in parent_starts])
            inter[:, k] = np.tile(vals, before_last)
        else:
            h = order.hierarchies[info.hierarchy_index]
            vals = np.asarray([col.feature_of(v)
                               for v in h.path_values(info.level)])
            after_ec = 1
            for hj in range(info.hierarchy_index + 1, last_hi):
                after_ec *= order.hierarchies[hj].n_leaves
            before_ec = int(order.leaf_product_before(info.hierarchy_index))
            per_combo = np.tile(np.repeat(vals, after_ec), before_ec)
            inter[:, k] = np.repeat(per_combo, n_parents)

    intra = np.empty((order.n_rows, len(intra_pos)))
    for k, pos in enumerate(intra_pos):
        col = matrix.columns[columns[pos]]
        vals = np.asarray([col.feature_of(v)
                           for v in last.path_values(len(last.attributes) - 1)])
        intra[:, k] = np.tile(vals, before_last)
    return inter, intra


# ---------------------------------------------------------------------------
# Exact-equality assertions between the array path and the dict oracle.
# ---------------------------------------------------------------------------


def _cof_factor_dict(values: tuple, counts: np.ndarray) -> dict:
    """First-occurrence ``{value: count}`` of one CrossCOF factor.

    Matches ``CrossCOF.__getitem__`` semantics (``tuple.index`` finds the
    first occurrence), so dict-oracle factors over run-ordered domains and
    array factors over merged domains compare equal exactly when every
    lookup agrees.
    """
    out: dict = {}
    for v, c in zip(values, counts.tolist()):
        if v not in out:
            out[v] = c
    return out


def assert_aggregate_sets_equal(got: AggregateSet,
                                want: AggregateSet) -> None:
    """Exact (bitwise-value, same-key-set) equality of two aggregate sets.

    ``got`` is typically the array-native result, ``want`` the dict
    oracle's; either side may hold ``CountMap`` or ``EncodedCountMap``
    relations (``==`` between the two forms decodes and compares key sets
    and float counts exactly — no tolerance anywhere).
    """
    assert got.totals == want.totals, \
        f"totals differ: {got.totals} != {want.totals}"
    assert got.counts.keys() == want.counts.keys()
    for a in want.counts:
        g, w = got.count_dict(a), want.count_dict(a)
        assert g == w, f"COUNT_{a} differs: {g} != {w}"
    assert got.cofs.keys() == want.cofs.keys()
    for pair in want.cofs:
        g, w = got.cofs[pair], want.cofs[pair]
        if isinstance(w, CrossCOF) or isinstance(g, CrossCOF):
            assert isinstance(g, CrossCOF) and isinstance(w, CrossCOF), \
                f"COF_{pair}: lazy/materialised mismatch"
            assert g.scale == w.scale, f"COF_{pair} scale differs"
            assert _cof_factor_dict(g.left_values, g.left_counts) \
                == _cof_factor_dict(w.left_values, w.left_counts), \
                f"COF_{pair} left factor differs"
            assert _cof_factor_dict(g.right_values, g.right_counts) \
                == _cof_factor_dict(w.right_values, w.right_counts), \
                f"COF_{pair} right factor differs"
        else:
            assert g == w, f"COF_{pair} differs"
