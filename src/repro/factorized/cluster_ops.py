"""Per-cluster factorised matrix operations (Appendix F, Algorithms 5–7).

The multi-level model needs, for every cluster i, the gram matrix
``Z_iᵀ·Z_i``, projections ``Z_iᵀ·v_i`` and products ``X_i·b_i``. Clusters
are adjacent row runs (Appendix F: the intra-cluster attribute is last in
the attribute order), which enables two optimizations the paper describes:

* *inter*-cluster attributes are constant within a cluster, so their
  contribution to any per-cluster quantity is a scalar per cluster — the
  "update only the difference from the previous cluster" trick of
  Algorithms 5–7 becomes, in vectorized form, plain per-cluster arrays;
* *intra*-cluster sums (Σf, Σf², Σf_p·f_q, Σf·v) reduce to segmented sums
  over the cluster offsets, shared across all clusters in one pass.

:class:`ClusterOps` precomputes the per-cluster inter-feature table and
intra segment structure once and then answers every EM iteration's
requests in O(G·r²) instead of O(n·r²).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .factorizer import Factorizer
from .forder import FactorizationError
from .matrix import FactorizedMatrix


class ClusterOps:
    """Batched per-cluster operations over a factorised matrix.

    Parameters
    ----------
    matrix:
        The factorised feature matrix; its last hierarchy's leaf attribute
        is the intra-cluster attribute.
    columns:
        Optional subset of column indices (the random-effects selection Z
    of §3.3.4). Defaults to all columns.
    """

    def __init__(self, matrix: FactorizedMatrix,
                 columns: Sequence[int] | None = None):
        self.matrix = matrix
        self.order = matrix.order
        self.factorizer = Factorizer(self.order)
        self.columns = list(range(matrix.n_cols)) if columns is None \
            else list(columns)
        if not self.columns:
            raise FactorizationError("cluster ops need at least one column")

        self.sizes = self.factorizer.cluster_sizes().astype(int)
        self.offsets = self.factorizer.cluster_offsets()
        self.n_clusters = len(self.sizes)

        intra_attr = self.factorizer.intra_attribute
        self._intra_pos = [k for k, ci in enumerate(self.columns)
                           if matrix.columns[ci].attribute == intra_attr]
        self._inter_pos = [k for k in range(len(self.columns))
                           if k not in self._intra_pos]

        self._inter_values = self._build_inter_values()   # (G, n_inter)
        self._intra_rows = self._build_intra_rows()       # (n, n_intra)
        # Segmented intra sums shared by every operation.
        starts = self.offsets[:-1]
        if self._intra_pos:
            self._intra_sums = np.add.reduceat(self._intra_rows, starts,
                                               axis=0)  # (G, n_intra)
        else:
            self._intra_sums = np.zeros((self.n_clusters, 0))

    # -- structure builders ---------------------------------------------------------
    def _build_inter_values(self) -> np.ndarray:
        """Per-cluster values of the inter (constant-in-cluster) columns."""
        order = self.order
        last_hi = len(order.hierarchies) - 1
        last = order.hierarchies[last_hi]
        if len(last.attributes) == 1:
            n_parents = 1
            parent_starts = np.asarray([0])
        else:
            parent_starts = last.run_starts[len(last.attributes) - 2]
            n_parents = len(parent_starts)
        before_last = int(order.leaf_product_before(last_hi))

        out = np.empty((self.n_clusters, len(self._inter_pos)))
        for k, pos in enumerate(self._inter_pos):
            ci = self.columns[pos]
            col = self.matrix.columns[ci]
            info = order.info(col.attribute)
            if info.hierarchy_index == last_hi:
                # Ancestor attribute inside the drill hierarchy: one value
                # per parent run, tiled over earlier-hierarchy combos.
                vals = col.feature_array(last.level_domain(info.level))[
                    last.level_codes(info.level)[parent_starts]]
                out[:, k] = np.tile(vals, before_last)
            else:
                h = order.hierarchies[info.hierarchy_index]
                vals = col.feature_array(h.level_domain(info.level))[
                    h.level_codes(info.level)]
                # Cluster index decomposes exactly like a row index over the
                # earlier hierarchies, with n_parents as the innermost step.
                after_ec = 1
                for hj in range(info.hierarchy_index + 1, last_hi):
                    after_ec *= order.hierarchies[hj].n_leaves
                before_ec = int(order.leaf_product_before(info.hierarchy_index))
                per_combo = np.tile(np.repeat(vals, after_ec), before_ec)
                out[:, k] = np.repeat(per_combo, n_parents)
        return out

    def _build_intra_rows(self) -> np.ndarray:
        """Full-length rows of the intra columns (n × n_intra).

        The intra column pattern is one pass over the last hierarchy's leaf
        paths, tiled over every earlier-hierarchy combination.
        """
        order = self.order
        last_hi = len(order.hierarchies) - 1
        last = order.hierarchies[last_hi]
        before_last = int(order.leaf_product_before(last_hi))
        out = np.empty((order.n_rows, len(self._intra_pos)))
        leaf_level = len(last.attributes) - 1
        for k, pos in enumerate(self._intra_pos):
            ci = self.columns[pos]
            col = self.matrix.columns[ci]
            vals = col.feature_array(last.level_domain(leaf_level))[
                last.level_codes(leaf_level)]
            out[:, k] = np.tile(vals, before_last)
        return out

    # -- operations -------------------------------------------------------------------
    def cluster_grams(self) -> np.ndarray:
        """Stacked ``Z_iᵀ·Z_i`` of shape (G, r, r) — Algorithm 5, batched."""
        g, r = self.n_clusters, len(self.columns)
        out = np.zeros((g, r, r))
        sizes = self.sizes.astype(float)
        v = self._inter_values
        inter, intra = self._inter_pos, self._intra_pos
        if inter:
            block = np.einsum("g,gi,gj->gij", sizes, v, v)
            out[np.ix_(range(g), inter, inter)] = block
        if inter and intra:
            cross = np.einsum("gi,gj->gij", v, self._intra_sums)
            out[np.ix_(range(g), inter, intra)] = cross
            out[np.ix_(range(g), intra, inter)] = np.swapaxes(cross, 1, 2)
        if intra:
            starts = self.offsets[:-1]
            prods = np.einsum("ni,nj->nij", self._intra_rows, self._intra_rows)
            sq = np.add.reduceat(prods, starts, axis=0)
            out[np.ix_(range(g), intra, intra)] = sq
        return out

    def cluster_left(self, v: np.ndarray) -> np.ndarray:
        """Stacked ``Z_iᵀ·v_i`` of shape (G, r) — Algorithm 6, batched.

        ``v`` is a full-length (n,) vector partitioned by cluster.
        """
        v = np.asarray(v, dtype=float)
        if v.shape != (self.order.n_rows,):
            raise ValueError(
                f"expected vector of length {self.order.n_rows}, got {v.shape}")
        starts = self.offsets[:-1]
        seg = np.add.reduceat(v, starts)
        out = np.empty((self.n_clusters, len(self.columns)))
        if self._inter_pos:
            out[:, self._inter_pos] = self._inter_values * seg[:, None]
        if self._intra_pos:
            out[:, self._intra_pos] = np.add.reduceat(
                self._intra_rows * v[:, None], starts, axis=0)
        return out

    def cluster_right(self, b: np.ndarray) -> np.ndarray:
        """Concatenated ``Z_i·b_i`` as one (n,) vector — Algorithm 7, batched.

        ``b`` has shape (G, r): one coefficient vector per cluster. This is
        the vertical-concatenation computation of ``Z·b̂`` in Appendix D.
        """
        b = np.asarray(b, dtype=float)
        if b.shape != (self.n_clusters, len(self.columns)):
            raise ValueError(
                f"expected ({self.n_clusters}, {len(self.columns)}), got {b.shape}")
        base = np.zeros(self.n_clusters)
        if self._inter_pos:
            base = np.einsum("gi,gi->g", self._inter_values,
                             b[:, self._inter_pos])
        out = np.repeat(base, self.sizes)
        if self._intra_pos:
            row_cluster = np.repeat(np.arange(self.n_clusters), self.sizes)
            out = out + np.einsum("ni,ni->n", self._intra_rows,
                                  b[np.ix_(row_cluster, self._intra_pos)])
        return out

    def cluster_sizes(self) -> np.ndarray:
        return self.sizes.copy()

    def split(self, v: np.ndarray) -> list[np.ndarray]:
        """Partition a full-length vector/matrix by cluster (test helper)."""
        return [v[self.offsets[i]:self.offsets[i + 1]]
                for i in range(self.n_clusters)]
