"""The Factorizer: f-representation storage and interfaces (Appendix C).

Stores the factorised attribute matrix as per-hierarchy sorted relations
(the BCNF decomposition of the hierarchy tables) and exposes the two
interfaces the matrix operators consume:

* **Relation interface** — for the least specific attribute of a hierarchy,
  a unary counted relation enumerating its values; for every other
  attribute, a binary counted relation connecting it to its parent
  attribute. These feed the multi-query aggregate planner.
* **Row iterator** (Algorithm 1) — walks the (never materialised) attribute
  matrix in row order, yielding only the *difference* from the previous
  row. Right multiplication and the per-cluster operators build on it.

Clusters (§3.2, Appendix F): rows agreeing on every attribute except the
most specific attribute of the last hierarchy form one cluster; they are
adjacent in row order, so clusters are described by an offsets array.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..relational.countmap import CountMap, EncodedCountMap
from .forder import AttributeOrder, FactorizationError


class Factorizer:
    """F-representation storage over an :class:`AttributeOrder`."""

    def __init__(self, order: AttributeOrder):
        self.order = order
        self._encoded: dict[str, EncodedCountMap] = {}

    @classmethod
    def seeded(cls, order: AttributeOrder,
               encoded: dict[str, EncodedCountMap]) -> "Factorizer":
        """A factorizer whose encoded-relation memo is pre-populated.

        The sharded unit builder computes each stored relation's distinct
        edge set in workers and seeds it here; every consumer then reads
        the merged relations through the ordinary memoized interface
        (attributes not seeded still build lazily from the level codes).
        """
        factorizer = cls(order)
        factorizer._encoded.update(encoded)
        return factorizer

    # -- relation interface (Appendix C.2) -----------------------------------------
    def relation_for(self, attribute: str) -> CountMap:
        """The stored relation that introduces ``attribute``.

        Unary ``R[A]`` for a hierarchy root; binary ``R[parent, A]``
        otherwise (sorted-map semantics, every multiplicity 1). This is the
        dict form consumed by the frozen oracle plans in
        :mod:`repro.factorized.reference`; the production planners run on
        :meth:`encoded_relation_for`.
        """
        info = self.order.info(attribute)
        h = self.order.hierarchies[info.hierarchy_index]
        if info.level == 0:
            return CountMap.unary(attribute, h.ordered_domain[0])
        parent = h.attributes[info.level - 1]
        pairs = {(p[info.level - 1], p[info.level]) for p in h.paths}
        return CountMap((parent, attribute), {pair: 1.0 for pair in pairs})

    def encoded_relation_for(self, attribute: str) -> EncodedCountMap:
        """The stored relation in code-indexed array form (memoized).

        Same counted relation as :meth:`relation_for`, keyed on the
        hierarchy's level encodings: a dense unary vector for a hierarchy
        root, distinct ``(parent code, child code)`` COO pairs otherwise.
        """
        hit = self._encoded.get(attribute)
        if hit is not None:
            return hit
        info = self.order.info(attribute)
        h = self.order.hierarchies[info.hierarchy_index]
        if info.level == 0:
            rel = EncodedCountMap.dense_unary(attribute, h.level_domain(0))
        else:
            parent = h.attributes[info.level - 1]
            pdom = h.level_domain(info.level - 1)
            cdom = h.level_domain(info.level)
            combined = h.level_codes(info.level - 1).astype(np.int64) \
                * len(cdom) + h.level_codes(info.level)
            uniq = np.unique(combined)
            rel = EncodedCountMap(
                (parent, attribute), (pdom, cdom),
                ((uniq // len(cdom)).astype(np.int32),
                 (uniq % len(cdom)).astype(np.int32)),
                np.ones(len(uniq)))
        self._encoded[attribute] = rel
        return rel

    def relations(self) -> list[CountMap]:
        """All stored relations, in attribute order."""
        return [self.relation_for(a) for a in self.order.attributes]

    def relations_of_hierarchy(self, hierarchy_index: int) -> list[CountMap]:
        h = self.order.hierarchies[hierarchy_index]
        return [self.relation_for(a) for a in h.attributes]

    def encoded_relations_of_hierarchy(self, hierarchy_index: int
                                       ) -> list[EncodedCountMap]:
        h = self.order.hierarchies[hierarchy_index]
        return [self.encoded_relation_for(a) for a in h.attributes]

    # -- row iterator (Algorithm 1) ---------------------------------------------------
    def row_iterator(self) -> Iterator[dict]:
        """Yield per-row *updates*: ``{attribute: new value}``.

        The first yield carries the full first row; each subsequent yield
        carries only attributes whose value changed — the ``end``-set
        propagation of Algorithm 1 falls out of comparing consecutive
        hierarchy paths.
        """
        order = self.order
        hs = order.hierarchies
        idx = [0] * len(hs)
        first = {}
        for h in hs:
            for level, a in enumerate(h.attributes):
                first[a] = h.paths[0][level]
        yield first
        n = order.n_rows
        for _ in range(1, n):
            update: dict = {}
            # Odometer increment: last hierarchy spins fastest.
            for hi in range(len(hs) - 1, -1, -1):
                h = hs[hi]
                old_path = h.paths[idx[hi]]
                idx[hi] += 1
                carried = idx[hi] == h.n_leaves
                if carried:
                    idx[hi] = 0
                new_path = h.paths[idx[hi]]
                for level, a in enumerate(h.attributes):
                    if old_path[level] != new_path[level]:
                        update[a] = new_path[level]
                if not carried:
                    break
            yield update

    def materialized_rows(self) -> list[tuple]:
        """Full rows reconstructed from the iterator (test helper)."""
        attrs = self.order.attributes
        current: dict = {}
        rows = []
        for update in self.row_iterator():
            current.update(update)
            rows.append(tuple(current[a] for a in attrs))
        return rows

    # -- cluster structure (Appendix F) ----------------------------------------------
    def cluster_sizes(self) -> np.ndarray:
        """Rows per cluster, in row order.

        The intra-cluster attribute is the most specific attribute of the
        last hierarchy; clusters are runs of rows constant on everything
        else.
        """
        last = self.order.hierarchies[-1]
        if len(last.attributes) == 1:
            within = np.asarray([last.n_leaves], dtype=float)
        else:
            within = last.leaf_counts[len(last.attributes) - 2]
        before = int(self.order.leaf_product_before(len(self.order.hierarchies) - 1))
        return np.tile(within, before)

    def cluster_offsets(self) -> np.ndarray:
        """Start offsets of each cluster plus a final sentinel (length G+1)."""
        sizes = self.cluster_sizes()
        out = np.zeros(len(sizes) + 1, dtype=int)
        np.cumsum(sizes.astype(int), out=out[1:])
        return out

    @property
    def n_clusters(self) -> int:
        return len(self.cluster_sizes())

    @property
    def intra_attribute(self) -> str:
        """The cluster-varying attribute (leaf of the last hierarchy)."""
        return self.order.hierarchies[-1].attributes[-1]

    def inter_attributes(self) -> tuple[str, ...]:
        """Attributes constant within each cluster."""
        intra = self.intra_attribute
        return tuple(a for a in self.order.attributes if a != intra)

    def cluster_keys(self) -> list[tuple]:
        """Inter-attribute value tuples of each cluster, in cluster order."""
        order = self.order
        last = order.hierarchies[-1]
        earlier = order.hierarchies[:-1]
        if len(last.attributes) == 1:
            last_prefixes: list[tuple] = [()]
        else:
            starts = last.run_starts[len(last.attributes) - 2]
            last_prefixes = [last.paths[s][:-1] for s in starts]
        keys: list[tuple] = []
        earlier_paths = _cartesian_paths(earlier)
        for prefix in earlier_paths:
            for lp in last_prefixes:
                keys.append(prefix + lp)
        return keys

    def __repr__(self) -> str:
        return f"Factorizer({self.order!r})"


def _cartesian_paths(hierarchies: Sequence) -> list[tuple]:
    """Cartesian product of hierarchy paths, in row order."""
    keys: list[tuple] = [()]
    for h in hierarchies:
        keys = [k + p for k in keys for p in h.paths]
    return keys


def check_row_order(factorizer: Factorizer) -> None:
    """Assert iterator order matches :meth:`AttributeOrder.row_key` order.

    Raises on mismatch; used in tests and as a debugging aid.
    """
    rows = factorizer.materialized_rows()
    for r, row in enumerate(rows):
        expected = factorizer.order.row_key(r)
        if row != expected:
            raise FactorizationError(
                f"row {r}: iterator produced {row!r}, expected {expected!r}")
