"""Vectorized factorised matrix operations (§4.2.2, Appendix E).

Each operation consumes the redundancy structure captured by the decomposed
aggregates instead of touching the (possibly astronomically tall) dense
matrix:

* :func:`gram` — Algorithm 2. Within one hierarchy the dot product is a sum
  over that hierarchy's *leaf paths* times the block repetition factor;
  across hierarchies the COF is rank-1 (independence), so the entry is
  ``n · E[f_a] · E[f_b]`` — never a materialised cartesian product.
* :func:`left_multiply` — Algorithm 3. Prefix sums over each input row turn
  every value block of a column into an O(1) range sum.
* :func:`right_multiply` — Algorithm 4. Work is shared across vertically
  adjacent rows: each hierarchy contributes a per-leaf partial product that
  is broadcast over its repetition pattern.

All three agree with numpy on the materialised matrix and with the
straight-from-pseudocode implementations in
:mod:`repro.factorized.reference` (asserted in tests).
"""

from __future__ import annotations

import numpy as np

from .matrix import FactorizedMatrix


def materialize(matrix: FactorizedMatrix) -> np.ndarray:
    """Dense (n × m) matrix; the factorised layout makes this tile/repeat."""
    order = matrix.order
    n = order.n_rows
    out = np.empty((n, matrix.n_cols))
    for hi, h in enumerate(order.hierarchies):
        cols = matrix.hierarchy_columns(hi)
        if not cols:
            continue
        before = int(order.leaf_product_before(hi))
        after = int(order.leaf_product_after(hi))
        block = np.repeat(matrix.leaf_features(hi), after, axis=0)
        out[:, cols] = np.tile(block, (before, 1))
    return out


def gram(matrix: FactorizedMatrix) -> np.ndarray:
    """``Xᵀ·X`` straight from the decomposed aggregates (Algorithm 2)."""
    order = matrix.order
    m = matrix.n_cols
    n = float(order.n_rows)
    out = np.empty((m, m))
    n_h = len(order.hierarchies)
    sums = []   # per hierarchy: column sums over leaf paths
    for hi in range(n_h):
        f = matrix.leaf_features(hi)
        sums.append(f.sum(axis=0))
    for hi in range(n_h):
        cols_i = matrix.hierarchy_columns(hi)
        if not cols_i:
            continue
        f_i = matrix.leaf_features(hi)
        li = order.hierarchies[hi].n_leaves
        # Same-hierarchy block: every leaf path carries all features of the
        # hierarchy at once, and the whole block repeats n / L_h times.
        repeat = n / li
        block = repeat * (f_i.T @ f_i)
        out[np.ix_(cols_i, cols_i)] = block
        # Cross-hierarchy blocks: COF is rank-1 by independence.
        for hj in range(hi + 1, n_h):
            cols_j = matrix.hierarchy_columns(hj)
            if not cols_j:
                continue
            lj = order.hierarchies[hj].n_leaves
            cross = (n / (li * lj)) * np.outer(sums[hi], sums[hj])
            out[np.ix_(cols_i, cols_j)] = cross
            out[np.ix_(cols_j, cols_i)] = cross.T
    return out


def _block_structure(matrix: FactorizedMatrix, attribute: str
                     ) -> tuple[np.ndarray, np.ndarray]:
    """(starts, ends) of every constant-value block of ``attribute``'s column.

    The column consists of ``repetition`` copies of the suffix block; inside
    each copy, domain value ``k`` spans ``counts[k]`` consecutive rows.
    """
    order = matrix.order
    counts = order.counts(attribute).astype(int)
    rep = int(order.repetition(attribute))
    total = int(order.total(attribute))
    inner = np.concatenate(([0], np.cumsum(counts)))[:-1]
    base = np.arange(rep) * total
    starts = (base[:, None] + inner[None, :]).ravel()
    ends = starts + np.tile(counts, rep)
    return starts, ends


def left_multiply(matrix: FactorizedMatrix, a: np.ndarray) -> np.ndarray:
    """``A·X`` for dense ``A`` of shape (q × n) — Algorithm 3, batched.

    One prefix-sum pass per input row; every column then costs one gather
    per value block.
    """
    a = np.atleast_2d(np.asarray(a, dtype=float))
    q, n = a.shape
    if n != matrix.n_rows:
        raise ValueError(f"A has {n} columns, matrix has {matrix.n_rows} rows")
    out = np.empty((q, matrix.n_cols))
    prefix: np.ndarray | None = None
    # Per-value sums are a property of the *attribute*, shared by all of
    # its feature columns — the work-sharing that makes ~3 columns per
    # attribute (the paper's X of width 3d) cheap. Per attribute we
    # compute block sums (one per constant-value block), fold the
    # ``repetition`` copies of the suffix together, and leave each column
    # a dot product of domain length.
    folded_cache: dict[str, np.ndarray] = {}
    for ci, col in enumerate(matrix.columns):
        attr = col.attribute
        if attr not in folded_cache:
            counts = matrix.order.counts(attr)
            rep = int(matrix.order.repetition(attr))
            n_dom = len(counts)
            if np.all(counts == 1.0):
                # Every block is a single row (the most specific level):
                # the block sums are the input itself, no gather needed.
                block_sums = a
            else:
                if prefix is None:
                    prefix = np.zeros((q, n + 1))
                    np.cumsum(a, axis=1, out=prefix[:, 1:])
                starts, ends = _block_structure(matrix, attr)
                block_sums = prefix[:, ends] - prefix[:, starts]
            folded_cache[attr] = \
                block_sums.reshape(q, rep, n_dom).sum(axis=1)
        out[:, ci] = folded_cache[attr] @ matrix.domain_features(ci)
    return out


def column_sums(matrix: FactorizedMatrix) -> np.ndarray:
    """``1ᵀ·X`` via COUNT maps alone — no O(n) pass at all."""
    order = matrix.order
    out = np.empty(matrix.n_cols)
    for ci, col in enumerate(matrix.columns):
        counts = order.counts(col.attribute)
        rep = order.repetition(col.attribute)
        out[ci] = rep * float(counts @ matrix.domain_features(ci))
    return out


def right_multiply(matrix: FactorizedMatrix, b: np.ndarray) -> np.ndarray:
    """``X·B`` for dense ``B`` of shape (m × p) — Algorithm 4, batched.

    Each hierarchy contributes its per-leaf partial products once; the
    result is assembled by broadcasting over the repeat/tile pattern, which
    is exactly the row-difference work sharing of the paper (vertically
    adjacent rows recompute only the hierarchy that changed).
    """
    b = np.asarray(b, dtype=float)
    squeeze = b.ndim == 1
    if squeeze:
        b = b[:, None]
    m, p = b.shape
    if m != matrix.n_cols:
        raise ValueError(f"B has {m} rows, matrix has {matrix.n_cols} columns")
    order = matrix.order
    n = order.n_rows
    out = np.zeros((n, p))
    for hi, h in enumerate(order.hierarchies):
        cols = matrix.hierarchy_columns(hi)
        if not cols:
            continue
        partial = matrix.leaf_features(hi) @ b[cols, :]  # (L_h × p)
        before = int(order.leaf_product_before(hi))
        after = int(order.leaf_product_after(hi))
        view = out.reshape(before, h.n_leaves, after, p)
        view += partial[None, :, None, :]
    return out[:, 0] if squeeze else out
