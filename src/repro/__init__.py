"""repro — a reproduction of Reptile (Huang & Wu, SIGMOD 2022).

Aggregation-level explanations for hierarchical data: given a complaint
about an aggregate query result, recommend the next drill-down attribute
and rank the drill-down groups by how much repairing their statistics to
model-predicted expectations resolves the complaint.

Public entry points::

    from repro import Reptile, Complaint, HierarchicalDataset

    dataset = HierarchicalDataset.build(relation, {"geo": ["district",
        "village"], "time": ["year"]}, measure="severity")
    engine = Reptile(dataset)
    session = engine.session(group_by=["year"], filters={"district": "Ofla"})
    rec = session.recommend(Complaint.too_high({"year": 1986}, "std"))
    print(rec.best_hierarchy, rec.best_group)
"""

from .core import (Complaint, Direction, DrillSession, ModelRepairer,
                   Recommendation, Reptile, ReptileConfig, StaleDataError)
from .relational import (AggState, AuxiliaryDataset, Cube, Delta, DeltaError,
                         Dimensions, GroupView, Hierarchy,
                         HierarchicalDataset, Relation, Schema, dimension,
                         measure)
from .serving import (AggregateCache, ComplaintRequest, ExplanationService,
                      dataset_fingerprint)

__version__ = "1.1.0"

__all__ = [
    "Complaint", "Direction", "DrillSession", "ModelRepairer",
    "Recommendation", "Reptile", "ReptileConfig", "StaleDataError",
    "AggState",
    "AuxiliaryDataset", "Cube", "Delta", "DeltaError", "Dimensions",
    "GroupView", "Hierarchy",
    "HierarchicalDataset", "Relation", "Schema", "dimension", "measure",
    "AggregateCache", "ComplaintRequest", "ExplanationService",
    "dataset_fingerprint", "__version__",
]
